// User-space TCP/IP stack (the smoltcp equivalent behind as-libos's `socket`
// module, §7.1 / Table 2).
//
// One NetStack per WFD, attached to a TunPort on the virtual switch. A
// background poller thread drives packet reception and retransmission
// timers; user threads block on condition variables for connect / accept /
// send-space / received-data, mirroring the blocking socket API the LibOS
// exposes (smol_bind, smol_connect, ...).
//
// TCP implementation notes:
//   * full three-way handshake, FIN teardown in both directions, RST on
//     unexpected segments,
//   * go-back-N loss recovery: in-order reassembly only, cumulative ACKs,
//     single retransmission timer per connection resending from snd_una,
//   * fixed 64 KiB windows (the advertised window is honored; no congestion
//     control — links here are queues, not routers),
//   * MSS 1460 on the copying path; the zero-copy path sends jumbo gather
//     segments (kZeroCopySegBytes, the TSO analogue) with the TCP checksum
//     offloaded to the trusted fabric.
//
// Zero-copy payload path (DESIGN.md "Zero-copy data path"): SendZeroCopy
// queues caller memory by reference under a refcounted pin that the stack
// holds until the covering ACK (retransmits re-read the pinned memory);
// received payload lands in pool-owned blocks (src/alloc/buffer_pool.h)
// that RecvZeroCopy hands to the reader by reference. Recv/Send remain the
// copying fallbacks and interoperate byte-exactly with the zero-copy calls.

#ifndef SRC_NETSTACK_STACK_H_
#define SRC_NETSTACK_STACK_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <thread>

#include "src/alloc/buffer_pool.h"
#include "src/common/queue.h"
#include "src/netstack/channel.h"
#include "src/netstack/wire.h"

namespace asnet {

class NetStack;

// One pool-owned extent of received payload, handed to the reader by
// reference. `owner` keeps the backing pool block alive while the reader
// looks at `bytes`; empty `bytes` signals EOF.
struct RxChunk {
  std::shared_ptr<const void> owner;
  std::span<const uint8_t> bytes;
};

// User handle for an established (or in-progress) TCP connection.
class TcpConnection {
 public:
  ~TcpConnection();

  // Blocks until at least one byte is buffered (or returns 0 on EOF).
  asbase::Result<size_t> Recv(std::span<uint8_t> out);
  // Blocks until the payload fits in the send buffer; returns bytes queued
  // (always data.size() on success).
  asbase::Result<size_t> Send(std::span<const uint8_t> data);
  // Reads exactly out.size() bytes unless EOF intervenes.
  asbase::Result<size_t> RecvAll(std::span<uint8_t> out);

  // Zero-copy TX: queues `data` by reference — the stack gather-writes
  // segments straight out of this memory (and re-reads it on retransmit),
  // then drops `pin` once the covering ACK arrives or the connection dies.
  // `pin` must keep `data` alive until then (an AsBuffer slot pin or any
  // shared owner). Same blocking/backpressure/deadline semantics as Send.
  asbase::Result<size_t> SendZeroCopy(std::span<const uint8_t> data,
                                      std::shared_ptr<const void> pin);
  // Zero-copy RX: hands back the front pool-owned extent by reference, no
  // copy. Blocks like Recv; `bytes.empty()` signals EOF. Readers needing
  // contiguity across extents use Recv/RecvAll (the copy fallback).
  asbase::Result<RxChunk> RecvZeroCopy();

  // Absolute MonoNanos instant after which blocking Recv/Send fail with
  // kDeadlineExceeded instead of waiting (cooperative invocation deadlines;
  // as-std stamps this from the surrounding run). 0 = wait forever.
  void set_deadline_nanos(int64_t deadline) { deadline_nanos_ = deadline; }
  int64_t deadline_nanos() const { return deadline_nanos_; }

  // Graceful shutdown: queues a FIN after pending data. Idempotent.
  void Close();

  Ipv4Addr remote_addr() const { return remote_addr_; }
  uint16_t remote_port() const { return remote_port_; }
  uint16_t local_port() const { return local_port_; }

 private:
  friend class NetStack;
  friend class TcpListener;
  TcpConnection(NetStack* stack, uint64_t id, Ipv4Addr remote_addr,
                uint16_t remote_port, uint16_t local_port)
      : stack_(stack), id_(id), remote_addr_(remote_addr),
        remote_port_(remote_port), local_port_(local_port) {}

  NetStack* stack_;
  uint64_t id_;
  Ipv4Addr remote_addr_;
  uint16_t remote_port_;
  uint16_t local_port_;
  int64_t deadline_nanos_ = 0;
};

class TcpListener {
 public:
  ~TcpListener();

  // Blocks until a connection completes the handshake.
  asbase::Result<std::unique_ptr<TcpConnection>> Accept(
      std::chrono::nanoseconds timeout = std::chrono::seconds(10));

  uint16_t port() const { return port_; }

  // Deadline inherited by every accepted connection (and capping Accept's
  // own wait). 0 = none.
  void set_deadline_nanos(int64_t deadline) { deadline_nanos_ = deadline; }
  int64_t deadline_nanos() const { return deadline_nanos_; }

 private:
  friend class NetStack;
  TcpListener(NetStack* stack, uint16_t port) : stack_(stack), port_(port) {}
  NetStack* stack_;
  uint16_t port_;
  int64_t deadline_nanos_ = 0;
};

class UdpSocket {
 public:
  ~UdpSocket();

  asbase::Status SendTo(Ipv4Addr dst, uint16_t dst_port,
                        std::span<const uint8_t> payload);
  struct Datagram {
    Ipv4Addr src;
    uint16_t src_port;
    std::vector<uint8_t> payload;
  };
  asbase::Result<Datagram> RecvFrom(
      std::chrono::nanoseconds timeout = std::chrono::seconds(10));

  uint16_t port() const { return port_; }

 private:
  friend class NetStack;
  UdpSocket(NetStack* stack, uint16_t port) : stack_(stack), port_(port) {}
  NetStack* stack_;
  uint16_t port_;
};

class NetStack {
 public:
  explicit NetStack(std::shared_ptr<TunPort> port);
  ~NetStack();

  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  Ipv4Addr addr() const { return port_->addr(); }

  asbase::Result<std::unique_ptr<TcpListener>> Listen(uint16_t port);
  asbase::Result<std::unique_ptr<TcpConnection>> Connect(
      Ipv4Addr dst, uint16_t dst_port,
      std::chrono::nanoseconds timeout = std::chrono::seconds(5));
  asbase::Result<std::unique_ptr<UdpSocket>> UdpBind(uint16_t port);

  // ICMP echo round trip; returns the RTT.
  asbase::Result<int64_t> Ping(
      Ipv4Addr dst, std::chrono::nanoseconds timeout = std::chrono::seconds(2));

  struct Stats {
    uint64_t segments_sent = 0;
    uint64_t segments_received = 0;
    uint64_t retransmissions = 0;
    uint64_t checksum_failures = 0;
  };
  Stats stats() const;

  static constexpr size_t kMss = 1460;
  static constexpr size_t kWindow = 64 * 1024 - 1;
  static constexpr size_t kSendBufferCap = 256 * 1024;
  // Zero-copy segments are gather frames over pinned memory, so they are
  // not bound by a copy budget: send up to 32 KiB per segment (the TSO
  // analogue; several still fit in the 64 KiB window for pipelining).
  static constexpr size_t kZeroCopySegBytes = 32 * 1024;
  // In-order payload past this much un-consumed buffered data is dropped
  // (and counted) instead of landed; go-back-N retransmission recovers it
  // once the reader drains. Generously above kSendBufferCap + kWindow so a
  // single maximally-backpressured sender never trips it.
  static constexpr size_t kRecvBufferCap = 1024 * 1024;
  static constexpr int64_t kRtoNanos = 20'000'000;  // 20 ms
  static constexpr int kMaxRetries = 10;

 private:
  friend class TcpConnection;
  friend class TcpListener;
  friend class UdpSocket;

  enum class TcpState {
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kCloseWait,
    kLastAck,
    kClosing,
    kClosed,
  };

  // One descriptor in a connection's send queue. Copy-path chunks pin their
  // own shared heap copy of the caller's bytes; zero-copy chunks pin the
  // caller's memory directly (AsBuffer slot pins). In-flight frames share
  // the pin, so memory survives any duplicate still sitting in a switch
  // queue even after the ACK trims the chunk.
  struct TxChunk {
    std::span<const uint8_t> bytes;
    std::shared_ptr<const void> pin;
    bool zerocopy = false;
  };

  // One contiguous extent of reassembled payload inside a pool block.
  struct RxSlice {
    asalloc::BufferPool::BlockRef block;
    uint32_t offset = 0;
    uint32_t length = 0;
  };

  struct Tcb {
    uint64_t id;
    TcpState state;
    Ipv4Addr remote_ip;
    uint16_t remote_port;
    uint16_t local_port;

    // Send side: send_chunks covers bytes [snd_una, snd_una + send_bytes).
    uint32_t snd_una = 0;
    uint32_t snd_nxt = 0;
    uint16_t snd_wnd = kWindow;
    std::deque<TxChunk> send_chunks;
    size_t send_bytes = 0;
    bool fin_queued = false;
    bool fin_sent = false;

    // Receive side: payload lands in pool-owned blocks; `land_block` is the
    // partially-filled tail the next in-order segment copies into.
    uint32_t rcv_nxt = 0;
    std::deque<RxSlice> recv_slices;
    size_t recv_bytes = 0;
    asalloc::BufferPool::BlockRef land_block;
    size_t land_fill = 0;
    bool peer_fin = false;

    // Retransmission.
    int64_t rto_deadline = 0;
    int retries = 0;

    // Set when the connection dies abnormally (RST / too many retries).
    bool aborted = false;
    // Latched once the three-way handshake completes (the state may move
    // past kEstablished before a waiter gets to observe it).
    bool synchronized = false;

    // Listener that spawned this tcb (SYN_RCVD -> accept queue), if any.
    uint16_t parent_listener = 0;
  };

  struct Listener {
    std::deque<uint64_t> pending;  // established tcb ids awaiting Accept
    bool open = true;
  };

  struct UdpPcb {
    std::deque<UdpSocket::Datagram> queue;
    bool open = true;
  };

  void PollerLoop();
  // Records `deadline` as a candidate earliest-armed-timer instant and kicks
  // the poller out of its event wait if this moves the wakeup earlier.
  // Requires `mutex_` held. The poller itself re-derives the exact earliest
  // deadline from the TCBs at the end of every timer pass.
  void NoteTimerDeadlineLocked(int64_t deadline);
  // Counts the frame into /metrics (alloy_net_tx_*) and hands it to the port.
  void Transmit(Packet frame);
  void HandlePacket(const Packet& packet);
  void HandleTcp(const Ipv4Header& ip, std::span<const uint8_t> l4_head,
                 const Packet& packet);
  void HandleUdp(const Ipv4Header& ip, std::span<const uint8_t> l4);
  void HandleIcmp(const Ipv4Header& ip, std::span<const uint8_t> l4);
  void CheckTimersLocked();

  // Transmission helpers; all require `mutex_` held.
  void SendSegmentLocked(Tcb& tcb, uint8_t flags, uint32_t seq,
                         std::span<const uint8_t> payload);
  // Gather variant: payload travels by reference (pinned), checksum is
  // offloaded to the trusted fabric. Zero memcpy of payload bytes.
  void SendGatherSegmentLocked(Tcb& tcb, uint8_t flags, uint32_t seq,
                               std::vector<PayloadRef> payload);
  // Transmits up to `limit` bytes of queued data starting `offset` bytes
  // past snd_una as ONE segment (gather or copied, depending on which kind
  // of chunk sits at `offset`); returns the segment's payload size.
  size_t TransmitChunkAtLocked(Tcb& tcb, uint32_t seq, size_t offset,
                               size_t limit);
  // Lands one in-order payload extent into the connection's pool blocks.
  void AppendRecvLocked(Tcb& tcb, std::span<const uint8_t> data);
  void SendRst(Ipv4Addr dst, uint16_t dst_port, uint16_t src_port,
               uint32_t seq, uint32_t ack);
  void PumpSendLocked(Tcb& tcb);
  void ArmTimerLocked(Tcb& tcb);
  Tcb* FindTcbLocked(Ipv4Addr remote_ip, uint16_t remote_port,
                     uint16_t local_port);
  uint16_t AllocatePortLocked();
  void DestroyTcbLocked(uint64_t id);

  // Called by the user-handle classes. A non-zero deadline (absolute
  // MonoNanos) bounds the blocking wait with kDeadlineExceeded.
  asbase::Result<size_t> TcpRecv(uint64_t id, std::span<uint8_t> out,
                                 int64_t deadline_nanos);
  asbase::Result<size_t> TcpSend(uint64_t id, std::span<const uint8_t> data,
                                 int64_t deadline_nanos);
  // Shared queueing loop behind both send paths: pushes chunk descriptors
  // under backpressure; `pin` keeps the chunk's memory alive until ACK.
  asbase::Result<size_t> TcpQueue(uint64_t id, std::span<const uint8_t> data,
                                  std::shared_ptr<const void> pin,
                                  bool zerocopy, int64_t deadline_nanos);
  asbase::Result<size_t> TcpSendZeroCopy(uint64_t id,
                                         std::span<const uint8_t> data,
                                         std::shared_ptr<const void> pin,
                                         int64_t deadline_nanos);
  asbase::Result<RxChunk> TcpRecvZeroCopy(uint64_t id, int64_t deadline_nanos);
  void TcpClose(uint64_t id);
  void TcpRelease(uint64_t id);  // handle destroyed
  void ListenerRelease(uint16_t port);
  void UdpRelease(uint16_t port);

  std::shared_ptr<TunPort> port_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // broadcast on any TCP event
  std::map<uint64_t, std::unique_ptr<Tcb>> tcbs_;
  std::map<std::tuple<Ipv4Addr, uint16_t, uint16_t>, uint64_t> tcb_index_;
  std::map<uint16_t, Listener> listeners_;
  std::map<uint16_t, UdpPcb> udp_pcbs_;
  std::condition_variable udp_cv_;
  uint64_t next_tcb_id_ = 1;
  uint32_t next_iss_ = 1000;
  uint16_t next_ephemeral_ = 40000;
  uint16_t ping_id_ = 7;
  uint16_t ping_seq_ = 0;
  std::map<uint16_t, int64_t> ping_waiters_;  // seq -> reply time (0=pending)
  std::condition_variable ping_cv_;

  Stats stats_;

  // Earliest armed TCP timer (absolute MonoNanos), 0 = none. Written under
  // `mutex_`; read lock-free by the poller to size its event wait so an idle
  // stack sleeps instead of ticking (DESIGN.md data plane).
  std::atomic<int64_t> next_timer_deadline_{0};

  std::atomic<bool> running_{true};
  std::thread poller_;
};

// Convenience: send all of `data` (Send already queues fully, this is for
// symmetry and clarity at call sites).
asbase::Status SendAll(TcpConnection& connection,
                       std::span<const uint8_t> data);

}  // namespace asnet

#endif  // SRC_NETSTACK_STACK_H_
