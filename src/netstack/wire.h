// On-the-wire formats for the user-space network stack (smoltcp equivalent,
// §7.1). The virtual TUN device carries raw IPv4 packets (layer 3), so there
// is no Ethernet/ARP layer; everything else — IPv4, TCP, UDP, ICMP echo,
// Internet checksums including the TCP/UDP pseudo-header — follows the RFCs.

#ifndef SRC_NETSTACK_WIRE_H_
#define SRC_NETSTACK_WIRE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace asnet {

// IPv4 address in host byte order ("10.0.0.1" == 0x0A000001).
using Ipv4Addr = uint32_t;

Ipv4Addr MakeAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
std::string AddrToString(Ipv4Addr addr);
asbase::Result<Ipv4Addr> ParseAddr(const std::string& text);

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// TCP flag bits.
constexpr uint8_t kTcpFin = 0x01;
constexpr uint8_t kTcpSyn = 0x02;
constexpr uint8_t kTcpRst = 0x04;
constexpr uint8_t kTcpPsh = 0x08;
constexpr uint8_t kTcpAck = 0x10;

struct Ipv4Header {
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  IpProto proto = IpProto::kTcp;
  uint8_t ttl = 64;
  uint16_t total_length = 0;  // header + payload
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;
};

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;  // header + payload
};

constexpr size_t kIpv4HeaderSize = 20;
constexpr size_t kTcpHeaderSize = 20;
constexpr size_t kUdpHeaderSize = 8;
constexpr size_t kIcmpHeaderSize = 8;

// One extent of payload carried by reference instead of by value — the
// virtual-fabric equivalent of an sk_buff frag. `pin` keeps `bytes` alive
// for as long as any frame (or duplicate of it sitting in a switch queue)
// references the memory: a TX slot pin, or the sender's shared heap copy.
struct PayloadRef {
  std::span<const uint8_t> bytes;
  std::shared_ptr<const void> pin;
};

// A frame on the virtual wire. Legacy frames are one contiguous byte buffer
// (headers + payload, built by BuildIpv4); zero-copy frames carry only the
// L3+L4 headers inline in `head()` while the payload stays in the sender's
// pinned memory and travels as `PayloadRef` extents. Copying a Packet (the
// switch does, for duplicate delivery) shares the pins, never the bytes.
class Packet {
 public:
  Packet() = default;
  // Legacy contiguous frame; implicit so existing BuildIpv4 call sites and
  // hand-rolled test packets keep working unchanged.
  Packet(std::vector<uint8_t> frame) : head_(std::move(frame)) {}
  // Gather frame: headers inline, payload by reference. `checksum_offload`
  // marks the L4 checksum as elided at build time (the trusted-fabric
  // analogue of NIC checksum offload); receivers must not verify it.
  Packet(std::vector<uint8_t> head, std::vector<PayloadRef> refs,
         bool checksum_offload)
      : head_(std::move(head)),
        refs_(std::move(refs)),
        checksum_offload_(checksum_offload) {}

  std::span<const uint8_t> head() const { return head_; }
  const std::vector<PayloadRef>& refs() const { return refs_; }
  bool contiguous() const { return refs_.empty(); }
  bool checksum_offload() const { return checksum_offload_; }

  size_t payload_ref_bytes() const {
    size_t total = 0;
    for (const PayloadRef& ref : refs_) {
      total += ref.bytes.size();
    }
    return total;
  }
  // Logical frame size (what a flattened copy would occupy).
  size_t size() const { return head_.size() + payload_ref_bytes(); }

 private:
  std::vector<uint8_t> head_;
  std::vector<PayloadRef> refs_;
  bool checksum_offload_ = false;
};

// RFC 1071 Internet checksum over `data` (+ optional initial sum).
uint16_t Checksum(std::span<const uint8_t> data, uint32_t initial = 0);

// Streaming checksum over scattered extents. `*odd` carries byte parity
// between extents so odd-length extents chain exactly as if the bytes were
// contiguous; start with `*odd = false` and fold/complement at the end.
uint32_t ChecksumAccumulate(std::span<const uint8_t> data, uint32_t sum,
                            bool* odd);

// Internet checksum over a gather list (headers + payload extents) without
// assembling them — the zero-copy TX path's checksum when offload is off.
uint16_t ChecksumGather(std::span<const std::span<const uint8_t>> parts,
                        uint32_t initial = 0);

// Pseudo-header partial sum for TCP/UDP checksums.
uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                         uint16_t l4_length);

// Builds a complete IPv4 packet around an L4 payload (header already built).
std::vector<uint8_t> BuildIpv4(const Ipv4Header& header,
                               std::span<const uint8_t> l4);

// Parses and validates (version, header checksum, length) an IPv4 packet;
// fills `header` and returns the L4 payload view into `packet`.
asbase::Result<std::span<const uint8_t>> ParseIpv4(
    std::span<const uint8_t> packet, Ipv4Header* header);

// Gather-aware ParseIpv4: validates the header in `packet.head()` and the
// total length against the frame's *logical* size (inline L4 bytes + payload
// extents), and returns the in-head L4 view. For a gather TCP frame that view
// is just the 20-byte TCP header; the payload stays in `packet.refs()`.
asbase::Result<std::span<const uint8_t>> ParseIpv4Packet(const Packet& packet,
                                                         Ipv4Header* header);

// Builds a TCP segment (header + payload) with a correct checksum.
std::vector<uint8_t> BuildTcp(Ipv4Addr src, Ipv4Addr dst,
                              const TcpHeader& header,
                              std::span<const uint8_t> payload);

asbase::Result<std::span<const uint8_t>> ParseTcp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> segment,
    TcpHeader* header);

// Builds a complete TCP/IPv4 gather frame: one 40-byte header block plus the
// payload by reference — zero memcpy of payload bytes. With
// `checksum_offload` the TCP checksum field is left zero and the frame is
// flagged so receivers skip verification; otherwise the checksum is computed
// by gathering the extents in place.
Packet BuildTcpPacket(Ipv4Addr src, Ipv4Addr dst, const TcpHeader& header,
                      std::vector<PayloadRef> payload, bool checksum_offload);

// Parses a TCP segment whose payload may be scattered: `l4_head` is the
// frame's in-head L4 view (from ParseIpv4Packet), `packet.refs()` the payload
// extents. Verifies the checksum across all extents unless the frame carries
// the offload flag. Returns the *inline* payload view (empty for gather
// frames — their payload is in `packet.refs()`).
asbase::Result<std::span<const uint8_t>> ParseTcpSegment(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> l4_head,
    const Packet& packet, TcpHeader* header);

std::vector<uint8_t> BuildUdp(Ipv4Addr src, Ipv4Addr dst,
                              const UdpHeader& header,
                              std::span<const uint8_t> payload);

asbase::Result<std::span<const uint8_t>> ParseUdp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> datagram,
    UdpHeader* header);

// ICMP echo request/reply (type 8/0, code 0).
std::vector<uint8_t> BuildIcmpEcho(bool reply, uint16_t id, uint16_t seq,
                                   std::span<const uint8_t> payload);

// Sequence-number comparison with wraparound (RFC 793 style).
inline bool SeqLt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool SeqLe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}

}  // namespace asnet

#endif  // SRC_NETSTACK_WIRE_H_
