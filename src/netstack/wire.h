// On-the-wire formats for the user-space network stack (smoltcp equivalent,
// §7.1). The virtual TUN device carries raw IPv4 packets (layer 3), so there
// is no Ethernet/ARP layer; everything else — IPv4, TCP, UDP, ICMP echo,
// Internet checksums including the TCP/UDP pseudo-header — follows the RFCs.

#ifndef SRC_NETSTACK_WIRE_H_
#define SRC_NETSTACK_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace asnet {

// IPv4 address in host byte order ("10.0.0.1" == 0x0A000001).
using Ipv4Addr = uint32_t;

Ipv4Addr MakeAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d);
std::string AddrToString(Ipv4Addr addr);
asbase::Result<Ipv4Addr> ParseAddr(const std::string& text);

enum class IpProto : uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

// TCP flag bits.
constexpr uint8_t kTcpFin = 0x01;
constexpr uint8_t kTcpSyn = 0x02;
constexpr uint8_t kTcpRst = 0x04;
constexpr uint8_t kTcpPsh = 0x08;
constexpr uint8_t kTcpAck = 0x10;

struct Ipv4Header {
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;
  IpProto proto = IpProto::kTcp;
  uint8_t ttl = 64;
  uint16_t total_length = 0;  // header + payload
};

struct TcpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;
};

struct UdpHeader {
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint16_t length = 0;  // header + payload
};

constexpr size_t kIpv4HeaderSize = 20;
constexpr size_t kTcpHeaderSize = 20;
constexpr size_t kUdpHeaderSize = 8;
constexpr size_t kIcmpHeaderSize = 8;

// RFC 1071 Internet checksum over `data` (+ optional initial sum).
uint16_t Checksum(std::span<const uint8_t> data, uint32_t initial = 0);

// Pseudo-header partial sum for TCP/UDP checksums.
uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                         uint16_t l4_length);

// Builds a complete IPv4 packet around an L4 payload (header already built).
std::vector<uint8_t> BuildIpv4(const Ipv4Header& header,
                               std::span<const uint8_t> l4);

// Parses and validates (version, header checksum, length) an IPv4 packet;
// fills `header` and returns the L4 payload view into `packet`.
asbase::Result<std::span<const uint8_t>> ParseIpv4(
    std::span<const uint8_t> packet, Ipv4Header* header);

// Builds a TCP segment (header + payload) with a correct checksum.
std::vector<uint8_t> BuildTcp(Ipv4Addr src, Ipv4Addr dst,
                              const TcpHeader& header,
                              std::span<const uint8_t> payload);

asbase::Result<std::span<const uint8_t>> ParseTcp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> segment,
    TcpHeader* header);

std::vector<uint8_t> BuildUdp(Ipv4Addr src, Ipv4Addr dst,
                              const UdpHeader& header,
                              std::span<const uint8_t> payload);

asbase::Result<std::span<const uint8_t>> ParseUdp(
    Ipv4Addr src, Ipv4Addr dst, std::span<const uint8_t> datagram,
    UdpHeader* header);

// ICMP echo request/reply (type 8/0, code 0).
std::vector<uint8_t> BuildIcmpEcho(bool reply, uint16_t id, uint16_t seq,
                                   std::span<const uint8_t> payload);

// Sequence-number comparison with wraparound (RFC 793 style).
inline bool SeqLt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool SeqLe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}

}  // namespace asnet

#endif  // SRC_NETSTACK_WIRE_H_
