#include "src/netstack/channel.h"

#include "src/common/clock.h"

namespace asnet {

void TunPort::Send(Packet packet) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  fabric_->Route(std::move(packet));
}

std::optional<Packet> TunPort::Receive(std::chrono::nanoseconds timeout) {
  const int64_t deadline = asbase::MonoNanos() + timeout.count();
  while (true) {
    const int64_t now = asbase::MonoNanos();
    if (now >= deadline) {
      return std::nullopt;
    }
    auto timed = rx_.PopWithTimeout(std::chrono::nanoseconds(deadline - now));
    if (!timed.has_value()) {
      return std::nullopt;
    }
    // Honor the modeled one-way latency.
    const int64_t remaining = timed->deliver_at_nanos - asbase::MonoNanos();
    if (remaining > 0) {
      asbase::SpinFor(remaining);
    }
    received_.fetch_add(1, std::memory_order_relaxed);
    return std::move(timed->packet);
  }
}

void TunPort::Kick() { rx_.Kick(); }

void TunPort::Detach() { rx_.Close(); }

std::shared_ptr<TunPort> VirtualSwitch::Attach(Ipv4Addr addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto port = std::make_shared<TunPort>(addr, this);
  ports_[addr] = port;
  return port;
}

void VirtualSwitch::Detach(Ipv4Addr addr) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = ports_.find(addr);
  if (it != ports_.end()) {
    it->second->Detach();
    ports_.erase(it);
  }
}

void VirtualSwitch::Route(Packet packet) {
  Ipv4Header header;
  auto payload = ParseIpv4Packet(packet, &header);
  if (!payload.ok()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::shared_ptr<TunPort> target;
  int copies = 1;
  int64_t deliver_at = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ports_.find(header.dst);
    if (it == ports_.end()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    target = it->second;
    if (model_.drop_rate > 0 && rng_.NextDouble() < model_.drop_rate) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (model_.duplicate_rate > 0 &&
        rng_.NextDouble() < model_.duplicate_rate) {
      copies = 2;
    }
    deliver_at = asbase::MonoNanos() + model_.latency_nanos;
  }
  for (int i = 0; i < copies; ++i) {
    target->rx_.Push(TunPort::Timed{packet, deliver_at});
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace asnet
