#include "src/netstack/stack.h"

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace asnet {
namespace {

// Seq number of the first byte held in the send buffer.
// (Stored per-tcb as `data_base`; helper docs only.)

// Upper bound on the poller's event wait. With no packets and no armed TCP
// timers the poller sleeps this long per iteration — a hygiene cap against a
// lost wakeup, not a tick (an idle stack does ~2 iterations/sec instead of
// the 1000/sec the old 1 ms tick cost).
constexpr std::chrono::nanoseconds kMaxIdleWait =
    std::chrono::milliseconds(500);

// Process-wide packet counters (all stacks aggregate into one series; the
// per-stack view stays in NetStack::Stats). Registry references are stable,
// so resolve them once.
struct NetCounters {
  asobs::Counter& tx_packets;
  asobs::Counter& tx_bytes;
  asobs::Counter& rx_packets;
  asobs::Counter& rx_bytes;
  asobs::Counter& poll_iterations;
  // RX drops by reason — a packet the stack received but never delivered
  // used to vanish silently; these make every drop path observable.
  asobs::Counter& rx_dropped_bad_ipv4;
  asobs::Counter& rx_dropped_dst_mismatch;
  asobs::Counter& rx_dropped_bad_tcp;
  asobs::Counter& rx_dropped_bad_udp;
  asobs::Counter& rx_dropped_no_listener;
  // Segments the reassembler declines to copy: out-of-order arrivals that
  // go-back-N would discard anyway, and in-order payload past the receive
  // buffer cap.
  asobs::Counter& rx_dropped_out_of_order;
  asobs::Counter& rx_dropped_window_full;
  // TCP payload bytes by path: zerocopy = gather frames over pinned memory,
  // copy = legacy contiguous segments. TX counts bytes put on the wire
  // (retransmits included), RX counts bytes consumed by the reader.
  asobs::Counter& tx_payload_zerocopy;
  asobs::Counter& tx_payload_copy;
  asobs::Counter& rx_payload_zerocopy;
  asobs::Counter& rx_payload_copy;
  // Zero-copy chunks still un-ACKed when their connection was torn down:
  // the pin released at teardown instead of at the covering ACK.
  asobs::Counter& tx_pins_aborted;
  // Time senders spent blocked on a full send buffer (kSendBufferCap).
  asobs::LatencyHistogram& tx_backpressure;
};

NetCounters& Counters() {
  static auto* counters = new NetCounters{
      asobs::Registry::Global().GetCounter("alloy_net_tx_packets_total"),
      asobs::Registry::Global().GetCounter("alloy_net_tx_bytes_total"),
      asobs::Registry::Global().GetCounter("alloy_net_rx_packets_total"),
      asobs::Registry::Global().GetCounter("alloy_net_rx_bytes_total"),
      asobs::Registry::Global().GetCounter("alloy_net_poll_iterations_total"),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "bad_ipv4"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "dst_mismatch"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "bad_tcp"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "bad_udp"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "no_listener"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "out_of_order"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_dropped_total",
                                           {{"reason", "window_full"}}),
      asobs::Registry::Global().GetCounter("alloy_net_tx_bytes_total",
                                           {{"path", "zerocopy"}}),
      asobs::Registry::Global().GetCounter("alloy_net_tx_bytes_total",
                                           {{"path", "copy"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_bytes_total",
                                           {{"path", "zerocopy"}}),
      asobs::Registry::Global().GetCounter("alloy_net_rx_bytes_total",
                                           {{"path", "copy"}}),
      asobs::Registry::Global().GetCounter("alloy_net_tx_pins_aborted_total"),
      asobs::Registry::Global().GetHistogram(
          "alloy_net_tx_backpressure_nanos"),
  };
  return *counters;
}

}  // namespace

// `data_base` lives in the Tcb as snd_una trimming state; declared here to
// keep the header compact.
struct TcbExtra {};

NetStack::NetStack(std::shared_ptr<TunPort> port) : port_(std::move(port)) {
  poller_ = std::thread([this] { PollerLoop(); });
}

NetStack::~NetStack() {
  running_.store(false);
  port_->Detach();
  poller_.join();
}

NetStack::Stats NetStack::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ------------------------------------------------------------- public API

asbase::Result<std::unique_ptr<TcpListener>> NetStack::Listen(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (port == 0) {
    return asbase::InvalidArgument("cannot listen on port 0");
  }
  auto [it, inserted] = listeners_.emplace(port, Listener{});
  if (!inserted) {
    return asbase::AlreadyExists("port " + std::to_string(port) +
                                 " already has a listener");
  }
  return std::unique_ptr<TcpListener>(new TcpListener(this, port));
}

asbase::Result<std::unique_ptr<TcpConnection>> NetStack::Connect(
    Ipv4Addr dst, uint16_t dst_port, std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const uint16_t local_port = AllocatePortLocked();
  const uint64_t id = next_tcb_id_++;
  auto tcb = std::make_unique<Tcb>();
  tcb->id = id;
  tcb->state = TcpState::kSynSent;
  tcb->remote_ip = dst;
  tcb->remote_port = dst_port;
  tcb->local_port = local_port;
  const uint32_t iss = next_iss_;
  next_iss_ += 64000;
  tcb->snd_una = iss;
  tcb->snd_nxt = iss + 1;
  tcb->rcv_nxt = 0;
  Tcb& ref = *tcb;
  tcbs_[id] = std::move(tcb);
  tcb_index_[{dst, dst_port, local_port}] = id;

  SendSegmentLocked(ref, kTcpSyn, iss, {});
  ArmTimerLocked(ref);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(timeout);
  cv_.wait_until(lock, deadline, [&] {
    return ref.synchronized || ref.aborted ||
           ref.state == TcpState::kClosed;
  });
  if (!ref.synchronized || ref.aborted) {
    DestroyTcbLocked(id);
    return asbase::Unavailable("connect to " + AddrToString(dst) + ":" +
                               std::to_string(dst_port) +
                               " failed (timeout or reset)");
  }
  return std::unique_ptr<TcpConnection>(
      new TcpConnection(this, id, dst, dst_port, local_port));
}

asbase::Result<std::unique_ptr<UdpSocket>> NetStack::UdpBind(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (port == 0) {
    port = AllocatePortLocked();
  }
  auto [it, inserted] = udp_pcbs_.emplace(port, UdpPcb{});
  if (!inserted) {
    return asbase::AlreadyExists("UDP port " + std::to_string(port) +
                                 " is bound");
  }
  return std::unique_ptr<UdpSocket>(new UdpSocket(this, port));
}

asbase::Result<int64_t> NetStack::Ping(Ipv4Addr dst,
                                       std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(mutex_);
  const uint16_t seq = ++ping_seq_;
  ping_waiters_[seq] = 0;
  const int64_t start = asbase::MonoNanos();
  const uint8_t payload[8] = {'a', 'l', 'l', 'o', 'y', 'p', 'n', 'g'};
  auto icmp = BuildIcmpEcho(false, ping_id_, seq, payload);
  Ipv4Header ip;
  ip.src = addr();
  ip.dst = dst;
  ip.proto = IpProto::kIcmp;
  Transmit(BuildIpv4(ip, icmp));

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(timeout);
  ping_cv_.wait_until(lock, deadline,
                      [&] { return ping_waiters_[seq] != 0; });
  const int64_t reply = ping_waiters_[seq];
  ping_waiters_.erase(seq);
  if (reply == 0) {
    return asbase::Unavailable("ping timeout");
  }
  return reply - start;
}

// ---------------------------------------------------------------- helpers

uint16_t NetStack::AllocatePortLocked() {
  for (int i = 0; i < 20000; ++i) {
    uint16_t candidate = next_ephemeral_++;
    if (next_ephemeral_ < 40000) {
      next_ephemeral_ = 40000;
    }
    bool taken = listeners_.count(candidate) > 0;
    for (const auto& [key, id] : tcb_index_) {
      if (std::get<2>(key) == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      return candidate;
    }
  }
  AS_LOG(kError) << "ephemeral port space exhausted";
  return 0;
}

NetStack::Tcb* NetStack::FindTcbLocked(Ipv4Addr remote_ip,
                                       uint16_t remote_port,
                                       uint16_t local_port) {
  auto it = tcb_index_.find({remote_ip, remote_port, local_port});
  if (it == tcb_index_.end()) {
    return nullptr;
  }
  auto tcb_it = tcbs_.find(it->second);
  return tcb_it == tcbs_.end() ? nullptr : tcb_it->second.get();
}

void NetStack::DestroyTcbLocked(uint64_t id) {
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return;
  }
  Tcb& tcb = *it->second;
  // Chunks still queued here are un-ACKed (the ACK trim pops acknowledged
  // ones); their pins release on erase below — at teardown, not at the
  // covering ACK. Count the zero-copy ones so leaked-looking early releases
  // are visible.
  size_t aborted_pins = 0;
  for (const TxChunk& chunk : tcb.send_chunks) {
    if (chunk.zerocopy) {
      ++aborted_pins;
    }
  }
  if (aborted_pins > 0) {
    Counters().tx_pins_aborted.Add(aborted_pins);
  }
  tcb_index_.erase({tcb.remote_ip, tcb.remote_port, tcb.local_port});
  tcbs_.erase(it);
}

void NetStack::SendSegmentLocked(Tcb& tcb, uint8_t flags, uint32_t seq,
                                 std::span<const uint8_t> payload) {
  TcpHeader header;
  header.src_port = tcb.local_port;
  header.dst_port = tcb.remote_port;
  header.seq = seq;
  header.ack = tcb.rcv_nxt;
  header.flags = flags;
  header.window = static_cast<uint16_t>(kWindow);
  auto segment = BuildTcp(addr(), tcb.remote_ip, header, payload);
  Ipv4Header ip;
  ip.src = addr();
  ip.dst = tcb.remote_ip;
  ip.proto = IpProto::kTcp;
  Transmit(BuildIpv4(ip, segment));
  ++stats_.segments_sent;
}

void NetStack::SendGatherSegmentLocked(Tcb& tcb, uint8_t flags, uint32_t seq,
                                       std::vector<PayloadRef> payload) {
  TcpHeader header;
  header.src_port = tcb.local_port;
  header.dst_port = tcb.remote_port;
  header.seq = seq;
  header.ack = tcb.rcv_nxt;
  header.flags = flags;
  header.window = static_cast<uint16_t>(kWindow);
  // checksum_offload: the fabric is an in-process queue, the NIC-offload
  // analogue — no payload read for checksumming, no payload copy at all.
  Transmit(BuildTcpPacket(addr(), tcb.remote_ip, header, std::move(payload),
                          /*checksum_offload=*/true));
  ++stats_.segments_sent;
}

size_t NetStack::TransmitChunkAtLocked(Tcb& tcb, uint32_t seq, size_t offset,
                                       size_t limit) {
  size_t skip = offset;
  auto it = tcb.send_chunks.begin();
  while (it != tcb.send_chunks.end() && skip >= it->bytes.size()) {
    skip -= it->bytes.size();
    ++it;
  }
  if (it == tcb.send_chunks.end() || limit == 0) {
    return 0;
  }
  if (it->zerocopy) {
    // Jumbo gather segment over consecutive pinned extents: the frame
    // references slot memory directly; retransmission re-enters here and
    // re-reads the same memory.
    size_t budget = std::min(limit, kZeroCopySegBytes);
    std::vector<PayloadRef> refs;
    size_t total = 0;
    while (it != tcb.send_chunks.end() && it->zerocopy && budget > 0) {
      const size_t take = std::min(it->bytes.size() - skip, budget);
      refs.push_back(PayloadRef{it->bytes.subspan(skip, take), it->pin});
      total += take;
      budget -= take;
      skip = 0;
      ++it;
    }
    SendGatherSegmentLocked(tcb, kTcpAck | kTcpPsh, seq, std::move(refs));
    Counters().tx_payload_zerocopy.Add(total);
    return total;
  }
  // Copying path: legacy contiguous MSS segment, assembled from consecutive
  // copy chunks (stops at the first zero-copy chunk so paths never mix
  // within one segment).
  const size_t budget = std::min(limit, kMss);
  std::vector<uint8_t> payload;
  payload.reserve(budget);
  while (it != tcb.send_chunks.end() && !it->zerocopy &&
         payload.size() < budget) {
    const size_t take =
        std::min(it->bytes.size() - skip, budget - payload.size());
    payload.insert(payload.end(), it->bytes.begin() + static_cast<long>(skip),
                   it->bytes.begin() + static_cast<long>(skip + take));
    skip = 0;
    ++it;
  }
  SendSegmentLocked(tcb, kTcpAck | kTcpPsh, seq, payload);
  Counters().tx_payload_copy.Add(payload.size());
  return payload.size();
}

void NetStack::AppendRecvLocked(Tcb& tcb, std::span<const uint8_t> data) {
  // Land the wire bytes into pool-owned blocks (the DMA-into-buffer step);
  // readers take these blocks by reference via RecvZeroCopy, so this is the
  // last copy the payload sees on the RX side.
  asalloc::BufferPool& pool = asalloc::BufferPool::Global();
  const size_t block_bytes = pool.block_bytes();
  size_t done = 0;
  while (done < data.size()) {
    if (tcb.land_block == nullptr || tcb.land_fill == block_bytes) {
      tcb.land_block = pool.Take();
      tcb.land_fill = 0;
    }
    const size_t take =
        std::min(data.size() - done, block_bytes - tcb.land_fill);
    std::memcpy(tcb.land_block.get() + tcb.land_fill, data.data() + done,
                take);
    // Extend the previous slice when this lands flush against it in the
    // same block — keeps RecvZeroCopy extents segment-spanningly large.
    bool merged = false;
    if (!tcb.recv_slices.empty()) {
      RxSlice& back = tcb.recv_slices.back();
      if (back.block == tcb.land_block &&
          back.offset + back.length == tcb.land_fill) {
        back.length += static_cast<uint32_t>(take);
        merged = true;
      }
    }
    if (!merged) {
      tcb.recv_slices.push_back(RxSlice{tcb.land_block,
                                        static_cast<uint32_t>(tcb.land_fill),
                                        static_cast<uint32_t>(take)});
    }
    tcb.land_fill += take;
    tcb.recv_bytes += take;
    done += take;
  }
}

void NetStack::SendRst(Ipv4Addr dst, uint16_t dst_port, uint16_t src_port,
                       uint32_t seq, uint32_t ack) {
  TcpHeader header;
  header.src_port = src_port;
  header.dst_port = dst_port;
  header.seq = seq;
  header.ack = ack;
  header.flags = kTcpRst | kTcpAck;
  header.window = 0;
  auto segment = BuildTcp(addr(), dst, header, {});
  Ipv4Header ip;
  ip.src = addr();
  ip.dst = dst;
  ip.proto = IpProto::kTcp;
  Transmit(BuildIpv4(ip, segment));
  ++stats_.segments_sent;
}

void NetStack::PumpSendLocked(Tcb& tcb) {
  if (tcb.state != TcpState::kEstablished &&
      tcb.state != TcpState::kCloseWait && tcb.state != TcpState::kFinWait1 &&
      tcb.state != TcpState::kLastAck && tcb.state != TcpState::kClosing) {
    return;
  }
  // `data_base` == seq of the first queued chunk byte == snd_una (the chunk
  // queue is trimmed exactly to snd_una on every ACK).
  const uint32_t data_base = tcb.snd_una;
  const uint32_t fin_adjust = tcb.fin_sent ? 1 : 0;
  while (true) {
    const uint32_t sent_ahead = tcb.snd_nxt - data_base - fin_adjust;
    if (sent_ahead >= tcb.send_bytes) {
      break;  // everything queued has been transmitted at least once
    }
    const uint32_t inflight = tcb.snd_nxt - tcb.snd_una;
    const uint32_t window = std::min<uint32_t>(tcb.snd_wnd, kWindow);
    if (inflight >= window) {
      break;
    }
    const size_t limit = std::min<size_t>(tcb.send_bytes - sent_ahead,
                                          window - inflight);
    const size_t sent =
        TransmitChunkAtLocked(tcb, tcb.snd_nxt, sent_ahead, limit);
    if (sent == 0) {
      break;
    }
    tcb.snd_nxt += static_cast<uint32_t>(sent);
  }

  const bool all_data_sent =
      (tcb.snd_nxt - data_base - fin_adjust) >= tcb.send_bytes;
  if (tcb.fin_queued && !tcb.fin_sent && all_data_sent) {
    SendSegmentLocked(tcb, kTcpFin | kTcpAck, tcb.snd_nxt, {});
    tcb.fin_sent = true;
    tcb.snd_nxt += 1;
    if (tcb.state == TcpState::kEstablished) {
      tcb.state = TcpState::kFinWait1;
    } else if (tcb.state == TcpState::kCloseWait) {
      tcb.state = TcpState::kLastAck;
    }
  }
  ArmTimerLocked(tcb);
}

void NetStack::ArmTimerLocked(Tcb& tcb) {
  if (tcb.snd_una == tcb.snd_nxt) {
    tcb.rto_deadline = 0;  // nothing in flight
    return;
  }
  if (tcb.rto_deadline == 0) {
    tcb.rto_deadline = asbase::MonoNanos() + kRtoNanos;
    NoteTimerDeadlineLocked(tcb.rto_deadline);
  }
}

void NetStack::NoteTimerDeadlineLocked(int64_t deadline) {
  const int64_t current =
      next_timer_deadline_.load(std::memory_order_relaxed);
  if (current != 0 && current <= deadline) {
    return;  // the poller already wakes in time
  }
  next_timer_deadline_.store(deadline, std::memory_order_release);
  // The poller may be mid-sleep with the stale (later or absent) deadline.
  // The kick is sticky, so it also covers the window where the poller read
  // the old value but has not entered its wait yet.
  port_->Kick();
}

// ----------------------------------------------------------------- poller

void NetStack::PollerLoop() {
  while (running_.load()) {
    Counters().poll_iterations.Add(1);
    // Event wait: block until a packet arrives (queue condvar), a user
    // thread arms an earlier timer (Kick), or the earliest armed TCP timer
    // is due. An idle stack — no traffic, nothing in flight — just sleeps.
    std::chrono::nanoseconds wait = kMaxIdleWait;
    const int64_t next_deadline =
        next_timer_deadline_.load(std::memory_order_acquire);
    if (next_deadline != 0) {
      const int64_t until = next_deadline - asbase::MonoNanos();
      wait = std::min(wait,
                      std::chrono::nanoseconds(std::max<int64_t>(until, 0)));
    }
    auto packet = port_->Receive(wait);
    if (packet.has_value()) {
      HandlePacket(*packet);
      // Drain without timer checks while traffic is hot.
      while (auto more = port_->Receive(std::chrono::nanoseconds(0))) {
        HandlePacket(*more);
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    CheckTimersLocked();
  }
}

void NetStack::Transmit(Packet frame) {
  NetCounters& counters = Counters();
  counters.tx_packets.Add(1);
  counters.tx_bytes.Add(frame.size());
  port_->Send(std::move(frame));
}

void NetStack::HandlePacket(const Packet& packet) {
  NetCounters& counters = Counters();
  counters.rx_packets.Add(1);
  counters.rx_bytes.Add(packet.size());
  Ipv4Header ip;
  auto l4 = ParseIpv4Packet(packet, &ip);
  if (!l4.ok()) {
    counters.rx_dropped_bad_ipv4.Add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.checksum_failures;
    return;
  }
  if (ip.dst != addr()) {
    // Not for us (switch shouldn't let this happen) — but count it: a
    // misconfigured route shows up here, not as silent packet loss.
    counters.rx_dropped_dst_mismatch.Add(1);
    return;
  }
  switch (ip.proto) {
    case IpProto::kTcp:
      HandleTcp(ip, *l4, packet);
      break;
    case IpProto::kUdp:
      // Only TCP data rides gather frames; UDP/ICMP are always contiguous.
      HandleUdp(ip, *l4);
      break;
    case IpProto::kIcmp:
      HandleIcmp(ip, *l4);
      break;
  }
}

void NetStack::HandleTcp(const Ipv4Header& ip, std::span<const uint8_t> l4_head,
                         const Packet& packet) {
  TcpHeader header;
  auto payload_or = ParseTcpSegment(ip.src, ip.dst, l4_head, packet, &header);
  std::unique_lock<std::mutex> lock(mutex_);
  if (!payload_or.ok()) {
    Counters().rx_dropped_bad_tcp.Add(1);
    ++stats_.checksum_failures;
    return;
  }
  // Inline payload (contiguous frames) — gather frames carry theirs in
  // packet.refs(); `seg_len` is the segment's total payload either way.
  auto payload = *payload_or;
  const size_t seg_len = payload.size() + packet.payload_ref_bytes();
  ++stats_.segments_received;

  Tcb* tcb = FindTcbLocked(ip.src, header.src_port, header.dst_port);
  if (tcb == nullptr) {
    // New connection attempt?
    auto listener_it = listeners_.find(header.dst_port);
    if ((header.flags & kTcpSyn) && !(header.flags & kTcpAck) &&
        listener_it != listeners_.end() && listener_it->second.open) {
      const uint64_t id = next_tcb_id_++;
      auto fresh = std::make_unique<Tcb>();
      fresh->id = id;
      fresh->state = TcpState::kSynRcvd;
      fresh->remote_ip = ip.src;
      fresh->remote_port = header.src_port;
      fresh->local_port = header.dst_port;
      const uint32_t iss = next_iss_;
      next_iss_ += 64000;
      fresh->snd_una = iss;
      fresh->snd_nxt = iss + 1;
      fresh->rcv_nxt = header.seq + 1;
      fresh->snd_wnd = header.window;
      fresh->parent_listener = header.dst_port;
      Tcb& ref = *fresh;
      tcbs_[id] = std::move(fresh);
      tcb_index_[{ip.src, header.src_port, header.dst_port}] = id;
      SendSegmentLocked(ref, kTcpSyn | kTcpAck, iss, {});
      ArmTimerLocked(ref);
      return;
    }
    if (!(header.flags & kTcpRst)) {
      SendRst(ip.src, header.src_port, header.dst_port, header.ack,
              header.seq + static_cast<uint32_t>(seg_len) + 1);
    }
    return;
  }

  if (header.flags & kTcpRst) {
    tcb->aborted = true;
    tcb->state = TcpState::kClosed;
    cv_.notify_all();
    return;
  }

  // Handshake progress.
  if (tcb->state == TcpState::kSynSent) {
    if ((header.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        header.ack == tcb->snd_nxt) {
      tcb->snd_una = header.ack;
      tcb->rcv_nxt = header.seq + 1;
      tcb->snd_wnd = header.window;
      tcb->state = TcpState::kEstablished;
      tcb->synchronized = true;
      tcb->rto_deadline = 0;
      tcb->retries = 0;
      SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});
      cv_.notify_all();
    }
    return;
  }
  if (tcb->state == TcpState::kSynRcvd) {
    if ((header.flags & kTcpAck) && header.ack == tcb->snd_nxt) {
      tcb->snd_una = header.ack;
      tcb->snd_wnd = header.window;
      tcb->state = TcpState::kEstablished;
      tcb->synchronized = true;
      tcb->rto_deadline = 0;
      tcb->retries = 0;
      auto listener_it = listeners_.find(tcb->parent_listener);
      if (listener_it != listeners_.end() && listener_it->second.open) {
        listener_it->second.pending.push_back(tcb->id);
      }
      cv_.notify_all();
      // Fall through: this segment may also carry data.
    } else if (header.flags & kTcpSyn) {
      // Duplicate SYN: re-send the SYN-ACK.
      SendSegmentLocked(*tcb, kTcpSyn | kTcpAck, tcb->snd_una, {});
      return;
    } else {
      return;
    }
  }

  // ACK processing.
  if (header.flags & kTcpAck) {
    tcb->snd_wnd = header.window;
    if (SeqLt(tcb->snd_una, header.ack) && SeqLe(header.ack, tcb->snd_nxt)) {
      uint32_t acked = header.ack - tcb->snd_una;
      // The FIN occupies the final sequence slot; data bytes are whatever
      // remains.
      uint32_t data_acked = acked;
      if (tcb->fin_sent && header.ack == tcb->snd_nxt) {
        data_acked = acked - 1;
      }
      data_acked = std::min<uint32_t>(data_acked, tcb->send_bytes);
      // Trim acknowledged chunks. Popping a fully-covered chunk drops its
      // pin — for zero-copy sends this is the moment the AsBuffer slot is
      // released (any duplicate frame still in flight keeps its own ref).
      uint32_t remaining = data_acked;
      while (remaining > 0) {
        TxChunk& front = tcb->send_chunks.front();
        if (front.bytes.size() <= remaining) {
          remaining -= static_cast<uint32_t>(front.bytes.size());
          tcb->send_chunks.pop_front();
        } else {
          front.bytes = front.bytes.subspan(remaining);
          remaining = 0;
        }
      }
      tcb->send_bytes -= data_acked;
      tcb->snd_una = header.ack;
      tcb->retries = 0;
      tcb->rto_deadline = 0;
      ArmTimerLocked(*tcb);

      if (tcb->fin_sent && tcb->snd_una == tcb->snd_nxt) {
        // Our FIN is acknowledged.
        if (tcb->state == TcpState::kFinWait1) {
          tcb->state =
              tcb->peer_fin ? TcpState::kClosed : TcpState::kFinWait2;
        } else if (tcb->state == TcpState::kLastAck ||
                   tcb->state == TcpState::kClosing) {
          tcb->state = TcpState::kClosed;
        }
      }
      cv_.notify_all();
      PumpSendLocked(*tcb);
    }
  }

  // Payload processing (in-order only; go-back-N).
  if (seg_len > 0) {
    if (header.seq == tcb->rcv_nxt && !tcb->peer_fin) {
      if (tcb->recv_bytes + seg_len > kRecvBufferCap) {
        // Receive buffer at cap: drop without copying — the sender's
        // go-back-N retransmission recovers once the reader drains. The
        // re-asserted cumulative ACK keeps the sender's clock ticking.
        Counters().rx_dropped_window_full.Add(1);
        SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});
      } else {
        if (!payload.empty()) {
          AppendRecvLocked(*tcb, payload);
        }
        for (const PayloadRef& ref : packet.refs()) {
          AppendRecvLocked(*tcb, ref.bytes);
        }
        tcb->rcv_nxt += static_cast<uint32_t>(seg_len);
        SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});
        cv_.notify_all();
      }
    } else {
      // Duplicate or out-of-order: go-back-N discards it regardless, so
      // skip the copy entirely — count it and re-assert the cumulative ACK.
      Counters().rx_dropped_out_of_order.Add(1);
      SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});
    }
  }

  // FIN processing.
  if (header.flags & kTcpFin) {
    // A FIN rides after any payload the segment carried; if that payload
    // was dropped above, rcv_nxt has not advanced and the FIN stays out of
    // order — the peer retransmits it.
    const uint32_t fin_seq =
        header.seq + static_cast<uint32_t>(seg_len);
    if (fin_seq == tcb->rcv_nxt && !tcb->peer_fin) {
      tcb->peer_fin = true;
      tcb->rcv_nxt += 1;
      SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});
      switch (tcb->state) {
        case TcpState::kEstablished:
          tcb->state = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          // Our FIN not yet acked: simultaneous close.
          tcb->state = (tcb->snd_una == tcb->snd_nxt) ? TcpState::kClosed
                                                      : TcpState::kClosing;
          break;
        case TcpState::kFinWait2:
          tcb->state = TcpState::kClosed;
          break;
        default:
          break;
      }
      cv_.notify_all();
    } else if (SeqLt(fin_seq, tcb->rcv_nxt)) {
      SendSegmentLocked(*tcb, kTcpAck, tcb->snd_nxt, {});  // duplicate FIN
    }
  }
}

void NetStack::HandleUdp(const Ipv4Header& ip, std::span<const uint8_t> l4) {
  UdpHeader header;
  auto payload = ParseUdp(ip.src, ip.dst, l4, &header);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!payload.ok()) {
    Counters().rx_dropped_bad_udp.Add(1);
    ++stats_.checksum_failures;
    return;
  }
  auto it = udp_pcbs_.find(header.dst_port);
  if (it == udp_pcbs_.end() || !it->second.open) {
    Counters().rx_dropped_no_listener.Add(1);
    return;  // no ICMP port-unreachable yet
  }
  UdpSocket::Datagram datagram;
  datagram.src = ip.src;
  datagram.src_port = header.src_port;
  datagram.payload.assign(payload->begin(), payload->end());
  it->second.queue.push_back(std::move(datagram));
  udp_cv_.notify_all();
}

void NetStack::HandleIcmp(const Ipv4Header& ip, std::span<const uint8_t> l4) {
  if (l4.size() < kIcmpHeaderSize) {
    return;
  }
  const uint8_t type = l4[0];
  const uint16_t id = static_cast<uint16_t>((l4[4] << 8) | l4[5]);
  const uint16_t seq = static_cast<uint16_t>((l4[6] << 8) | l4[7]);
  if (type == 8) {  // echo request: reply
    auto reply = BuildIcmpEcho(true, id, seq, l4.subspan(kIcmpHeaderSize));
    Ipv4Header out;
    out.src = addr();
    out.dst = ip.src;
    out.proto = IpProto::kIcmp;
    Transmit(BuildIpv4(out, reply));
  } else if (type == 0) {  // echo reply
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = ping_waiters_.find(seq);
    if (it != ping_waiters_.end()) {
      it->second = asbase::MonoNanos();
      ping_cv_.notify_all();
    }
  }
}

void NetStack::CheckTimersLocked() {
  const int64_t now = asbase::MonoNanos();
  for (auto& [id, tcb_ptr] : tcbs_) {
    Tcb& tcb = *tcb_ptr;
    if (tcb.rto_deadline == 0 || now < tcb.rto_deadline ||
        tcb.state == TcpState::kClosed) {
      continue;
    }
    if (++tcb.retries > kMaxRetries) {
      tcb.aborted = true;
      tcb.state = TcpState::kClosed;
      tcb.rto_deadline = 0;
      cv_.notify_all();
      continue;
    }
    ++stats_.retransmissions;
    switch (tcb.state) {
      case TcpState::kSynSent:
        SendSegmentLocked(tcb, kTcpSyn, tcb.snd_una, {});
        break;
      case TcpState::kSynRcvd:
        SendSegmentLocked(tcb, kTcpSyn | kTcpAck, tcb.snd_una, {});
        break;
      default: {
        const uint32_t unacked_data =
            std::min<uint32_t>(tcb.snd_nxt - tcb.snd_una,
                               static_cast<uint32_t>(tcb.send_bytes));
        if (unacked_data > 0) {
          // Go-back-N: resend one segment from snd_una. Zero-copy chunks
          // re-read the still-pinned slot memory; no stash was kept.
          TransmitChunkAtLocked(tcb, tcb.snd_una, 0, unacked_data);
        } else if (tcb.fin_sent && tcb.snd_una != tcb.snd_nxt) {
          SendSegmentLocked(tcb, kTcpFin | kTcpAck, tcb.snd_nxt - 1, {});
        }
        break;
      }
    }
    const int backoff_shift = std::min(tcb.retries, 6);
    tcb.rto_deadline = now + (kRtoNanos << backoff_shift);
  }

  // Re-derive the exact earliest armed deadline for the poller's next event
  // wait. Runs on the poller thread, so no kick is needed: the fresh value
  // is read right before the next sleep.
  int64_t next = 0;
  for (const auto& [id, tcb_ptr] : tcbs_) {
    const Tcb& tcb = *tcb_ptr;
    if (tcb.rto_deadline == 0 || tcb.state == TcpState::kClosed) {
      continue;
    }
    if (next == 0 || tcb.rto_deadline < next) {
      next = tcb.rto_deadline;
    }
  }
  next_timer_deadline_.store(next, std::memory_order_release);
}

// --------------------------------------------------------- handle plumbing

asbase::Result<size_t> NetStack::TcpRecv(uint64_t id, std::span<uint8_t> out,
                                         int64_t deadline_nanos) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return asbase::FailedPrecondition("connection is gone");
  }
  Tcb& tcb = *it->second;
  auto readable = [&] {
    return tcb.recv_bytes > 0 || tcb.peer_fin || tcb.aborted ||
           tcb.state == TcpState::kClosed;
  };
  if (deadline_nanos == 0) {
    cv_.wait(lock, readable);
  } else {
    while (!readable()) {
      const int64_t now = asbase::MonoNanos();
      if (now >= deadline_nanos) {
        return asbase::DeadlineExceeded("recv past invocation deadline");
      }
      cv_.wait_for(lock, std::chrono::nanoseconds(deadline_nanos - now));
    }
  }
  if (tcb.aborted) {
    return asbase::Unavailable("connection reset by peer");
  }
  if (tcb.recv_bytes == 0) {
    return size_t{0};  // EOF
  }
  // Copy fallback: gather the pool-owned slices into the caller's
  // contiguous buffer (readers that can take extents use RecvZeroCopy).
  const size_t n = std::min(out.size(), tcb.recv_bytes);
  size_t done = 0;
  while (done < n) {
    RxSlice& slice = tcb.recv_slices.front();
    const size_t take = std::min<size_t>(slice.length, n - done);
    std::memcpy(out.data() + done, slice.block.get() + slice.offset, take);
    done += take;
    if (take == slice.length) {
      tcb.recv_slices.pop_front();  // block recycles when the last ref drops
    } else {
      slice.offset += static_cast<uint32_t>(take);
      slice.length -= static_cast<uint32_t>(take);
    }
  }
  tcb.recv_bytes -= n;
  Counters().rx_payload_copy.Add(n);
  return n;
}

asbase::Result<RxChunk> NetStack::TcpRecvZeroCopy(uint64_t id,
                                                  int64_t deadline_nanos) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return asbase::FailedPrecondition("connection is gone");
  }
  Tcb& tcb = *it->second;
  auto readable = [&] {
    return tcb.recv_bytes > 0 || tcb.peer_fin || tcb.aborted ||
           tcb.state == TcpState::kClosed;
  };
  if (deadline_nanos == 0) {
    cv_.wait(lock, readable);
  } else {
    while (!readable()) {
      const int64_t now = asbase::MonoNanos();
      if (now >= deadline_nanos) {
        return asbase::DeadlineExceeded("recv past invocation deadline");
      }
      cv_.wait_for(lock, std::chrono::nanoseconds(deadline_nanos - now));
    }
  }
  if (tcb.aborted) {
    return asbase::Unavailable("connection reset by peer");
  }
  if (tcb.recv_bytes == 0) {
    return RxChunk{};  // EOF: empty bytes, no owner
  }
  // Hand the front extent to the reader by reference — the block leaves the
  // connection's queue but stays alive through chunk.owner.
  RxSlice slice = std::move(tcb.recv_slices.front());
  tcb.recv_slices.pop_front();
  tcb.recv_bytes -= slice.length;
  Counters().rx_payload_zerocopy.Add(slice.length);
  RxChunk chunk;
  chunk.bytes = std::span<const uint8_t>(slice.block.get() + slice.offset,
                                         slice.length);
  chunk.owner = std::move(slice.block);
  return chunk;
}

asbase::Result<size_t> NetStack::TcpQueue(uint64_t id,
                                          std::span<const uint8_t> data,
                                          std::shared_ptr<const void> pin,
                                          bool zerocopy,
                                          int64_t deadline_nanos) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return asbase::FailedPrecondition("connection is gone");
  }
  Tcb& tcb = *it->second;
  size_t queued = 0;
  while (queued < data.size()) {
    auto writable = [&] {
      return tcb.send_bytes < kSendBufferCap || tcb.aborted ||
             tcb.fin_queued || tcb.state == TcpState::kClosed;
    };
    if (!writable()) {
      // Backpressure: the send queue is at kSendBufferCap and the sender
      // blocks (deadline-aware) until ACK processing trims it. The blocked
      // time is the `alloy_net_tx_backpressure_nanos` summary.
      const int64_t blocked_at = asbase::MonoNanos();
      if (deadline_nanos == 0) {
        cv_.wait(lock, writable);
      } else {
        while (!writable()) {
          const int64_t now = asbase::MonoNanos();
          if (now >= deadline_nanos) {
            Counters().tx_backpressure.Record(now - blocked_at);
            return asbase::DeadlineExceeded("send past invocation deadline");
          }
          cv_.wait_for(lock, std::chrono::nanoseconds(deadline_nanos - now));
        }
      }
      Counters().tx_backpressure.Record(asbase::MonoNanos() - blocked_at);
    }
    if (tcb.fin_queued) {
      return asbase::FailedPrecondition("send after close");
    }
    if (tcb.aborted || tcb.state == TcpState::kClosed) {
      return asbase::Unavailable("connection reset");
    }
    const size_t space = kSendBufferCap - tcb.send_bytes;
    const size_t chunk = std::min(space, data.size() - queued);
    tcb.send_chunks.push_back(
        TxChunk{data.subspan(queued, chunk), pin, zerocopy});
    tcb.send_bytes += chunk;
    queued += chunk;
    PumpSendLocked(tcb);
  }
  return queued;
}

asbase::Result<size_t> NetStack::TcpSend(uint64_t id,
                                         std::span<const uint8_t> data,
                                         int64_t deadline_nanos) {
  // Copying path: one shared heap copy of the caller's bytes up front. The
  // copy doubles as the chunk pin, so in-flight frames (and duplicates in
  // switch queues) share ownership instead of referencing tcb-local
  // storage that an ACK could trim from under them.
  auto owned = std::make_shared<std::vector<uint8_t>>(data.begin(),
                                                      data.end());
  return TcpQueue(id, std::span<const uint8_t>(*owned), owned,
                  /*zerocopy=*/false, deadline_nanos);
}

asbase::Result<size_t> NetStack::TcpSendZeroCopy(
    uint64_t id, std::span<const uint8_t> data,
    std::shared_ptr<const void> pin, int64_t deadline_nanos) {
  return TcpQueue(id, data, std::move(pin), /*zerocopy=*/true,
                  deadline_nanos);
}

void NetStack::TcpClose(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return;
  }
  Tcb& tcb = *it->second;
  if (tcb.state == TcpState::kSynSent || tcb.state == TcpState::kSynRcvd) {
    tcb.state = TcpState::kClosed;
    cv_.notify_all();
    return;
  }
  if (!tcb.fin_queued && (tcb.state == TcpState::kEstablished ||
                          tcb.state == TcpState::kCloseWait)) {
    tcb.fin_queued = true;
    PumpSendLocked(tcb);
  }
}

void NetStack::TcpRelease(uint64_t id) {
  TcpClose(id);
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = tcbs_.find(id);
  if (it == tcbs_.end()) {
    return;
  }
  // Give the teardown a moment to finish cleanly, then drop the tcb. The
  // retransmission machinery keeps running while we wait.
  Tcb& tcb = *it->second;
  cv_.wait_for(lock, std::chrono::milliseconds(200), [&] {
    return tcb.state == TcpState::kClosed ||
           (tcb.fin_sent && tcb.snd_una == tcb.snd_nxt);
  });
  DestroyTcbLocked(id);
}

void NetStack::ListenerRelease(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(port);
  if (it == listeners_.end()) {
    return;
  }
  // Orphan any un-accepted connections.
  for (uint64_t id : it->second.pending) {
    auto tcb_it = tcbs_.find(id);
    if (tcb_it != tcbs_.end()) {
      tcb_it->second->fin_queued = true;
      PumpSendLocked(*tcb_it->second);
    }
  }
  listeners_.erase(it);
}

void NetStack::UdpRelease(uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  udp_pcbs_.erase(port);
}

// -------------------------------------------------------------- handles

TcpConnection::~TcpConnection() { stack_->TcpRelease(id_); }

asbase::Result<size_t> TcpConnection::Recv(std::span<uint8_t> out) {
  return stack_->TcpRecv(id_, out, deadline_nanos_);
}

asbase::Result<size_t> TcpConnection::Send(std::span<const uint8_t> data) {
  return stack_->TcpSend(id_, data, deadline_nanos_);
}

asbase::Result<size_t> TcpConnection::SendZeroCopy(
    std::span<const uint8_t> data, std::shared_ptr<const void> pin) {
  return stack_->TcpSendZeroCopy(id_, data, std::move(pin), deadline_nanos_);
}

asbase::Result<RxChunk> TcpConnection::RecvZeroCopy() {
  return stack_->TcpRecvZeroCopy(id_, deadline_nanos_);
}

asbase::Result<size_t> TcpConnection::RecvAll(std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    AS_ASSIGN_OR_RETURN(size_t n, Recv(out.subspan(done)));
    if (n == 0) {
      break;
    }
    done += n;
  }
  return done;
}

void TcpConnection::Close() { stack_->TcpClose(id_); }

TcpListener::~TcpListener() { stack_->ListenerRelease(port_); }

asbase::Result<std::unique_ptr<TcpConnection>> TcpListener::Accept(
    std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(stack_->mutex_);
  // The invocation deadline (when set) caps the accept wait too.
  std::chrono::nanoseconds wait = timeout;
  if (deadline_nanos_ != 0) {
    const int64_t remaining = deadline_nanos_ - asbase::MonoNanos();
    if (remaining <= 0) {
      return asbase::DeadlineExceeded("accept past invocation deadline");
    }
    wait = std::min(wait, std::chrono::nanoseconds(remaining));
  }
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(wait);
  auto& listener = stack_->listeners_.at(port_);
  if (!stack_->cv_.wait_until(lock, deadline,
                              [&] { return !listener.pending.empty(); })) {
    if (deadline_nanos_ != 0 && asbase::MonoNanos() >= deadline_nanos_) {
      return asbase::DeadlineExceeded("accept past invocation deadline");
    }
    return asbase::Unavailable("accept timeout");
  }
  const uint64_t id = listener.pending.front();
  listener.pending.pop_front();
  auto it = stack_->tcbs_.find(id);
  if (it == stack_->tcbs_.end()) {
    return asbase::Unavailable("connection vanished before accept");
  }
  NetStack::Tcb& tcb = *it->second;
  auto connection = std::unique_ptr<TcpConnection>(new TcpConnection(
      stack_, id, tcb.remote_ip, tcb.remote_port, tcb.local_port));
  connection->set_deadline_nanos(deadline_nanos_);
  return connection;
}

UdpSocket::~UdpSocket() { stack_->UdpRelease(port_); }

asbase::Status UdpSocket::SendTo(Ipv4Addr dst, uint16_t dst_port,
                                 std::span<const uint8_t> payload) {
  UdpHeader header;
  header.src_port = port_;
  header.dst_port = dst_port;
  auto datagram = BuildUdp(stack_->addr(), dst, header, payload);
  Ipv4Header ip;
  ip.src = stack_->addr();
  ip.dst = dst;
  ip.proto = IpProto::kUdp;
  stack_->Transmit(BuildIpv4(ip, datagram));
  return asbase::OkStatus();
}

asbase::Result<UdpSocket::Datagram> UdpSocket::RecvFrom(
    std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(stack_->mutex_);
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(timeout);
  auto& pcb = stack_->udp_pcbs_.at(port_);
  if (!stack_->udp_cv_.wait_until(lock, deadline,
                                  [&] { return !pcb.queue.empty(); })) {
    return asbase::Unavailable("recvfrom timeout");
  }
  Datagram datagram = std::move(pcb.queue.front());
  pcb.queue.pop_front();
  return datagram;
}

asbase::Status SendAll(TcpConnection& connection,
                       std::span<const uint8_t> data) {
  AS_ASSIGN_OR_RETURN(size_t n, connection.Send(data));
  if (n != data.size()) {
    return asbase::Internal("short send");
  }
  return asbase::OkStatus();
}

}  // namespace asnet
