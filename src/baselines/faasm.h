// Faasm baseline runtime (§8.1, §8.5).
//
// Faasm executes WASM functions as threads ("Faaslets") inside a worker
// process. Intermediate data lives in its two-tier state architecture: a
// worker-local shared region (accessed via mremap'd pages, paying page
// faults) synchronized with a global Redis tier. Its control plane
// schedules every function invocation through the distributed state.
//
// Mapping here (DESIGN.md §1):
//   - guests are AsVM modules (the same ones AlloyStack-C/Py runs),
//   - the local state tier is an in-process table; every transfer pays the
//     modeled per-page fault cost on both the write and the read side,
//   - every transfer also writes a state descriptor to the mini-redis
//     server (global tier sync), and every function dispatch performs a
//     scheduler round trip against it,
//   - WAVM executes AOT mode without AlloyStack's Cranelift penalty.

#ifndef SRC_BASELINES_FAASM_H_
#define SRC_BASELINES_FAASM_H_

#include <memory>

#include "src/baselines/kvstore.h"
#include "src/baselines/runtimes.h"
#include "src/workloads/vm_apps.h"

namespace asbl {

class FaasmRuntime {
 public:
  struct Options {
    // Host directory with workflow inputs (guest path_open resolves here).
    std::string input_dir = "/tmp";
    // Run guests in the boxed (CPython-model) interpreter.
    bool python = false;
  };

  explicit FaasmRuntime(Options options);
  ~FaasmRuntime();

  asbase::Result<BaselineRunStats> Run(const aswl::VmWorkflowSpec& workflow,
                                       const asbase::Json& params);

 private:
  Options options_;
  std::unique_ptr<KvServer> kv_;
};

}  // namespace asbl

#endif  // SRC_BASELINES_FAASM_H_
