#include "src/baselines/transports.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/baselines/kvstore.h"
#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/netstack/stack.h"

namespace asbl {
namespace {

uint64_t WalkChecksum(const uint8_t* data, size_t len) {
  uint64_t sum = 0;
  for (size_t i = 0; i < len; ++i) {
    sum += data[i];
  }
  return sum;
}

void FillData(uint8_t* data, size_t len) {
  asbase::Rng rng(7);
  for (size_t i = 0; i < len; ++i) {
    data[i] = static_cast<uint8_t>(rng.Next());
  }
}

bool ReadExact(int fd, void* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, static_cast<char*>(buffer) + done, len - done);
    if (n <= 0) {
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteExact(int fd, const void* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, static_cast<const char*>(buffer) + done,
                        len - done);
    if (n <= 0) {
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// ---------------------------------------------------------- function call

asbase::Result<int64_t> FunctionCall(size_t bytes) {
  std::vector<uint8_t> buffer(bytes);
  FillData(buffer.data(), bytes);
  // "The sender immediately calls the receiver function" — the receiver
  // accesses the data through plain loads in the shared address space.
  auto receiver = [](const uint8_t* data, size_t len) {
    return WalkChecksum(data, len);
  };
  const int64_t start = asbase::MonoNanos();
  volatile uint64_t sink = receiver(buffer.data(), buffer.size());
  const int64_t elapsed = asbase::MonoNanos() - start;
  (void)sink;
  return elapsed;
}

// ---------------------------------------------------------- shared memory

asbase::Result<int64_t> SharedMemory(size_t bytes) {
  void* region = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (region == MAP_FAILED) {
    return asbase::Internal("mmap failed");
  }
  int doorbell[2], done[2];
  if (::pipe(doorbell) != 0 || ::pipe(done) != 0) {
    ::munmap(region, bytes);
    return asbase::Internal("pipe failed");
  }

  pid_t child = ::fork();
  if (child < 0) {
    ::munmap(region, bytes);
    return asbase::Internal("fork failed");
  }
  if (child == 0) {
    // Receiver process: wait for the doorbell, traverse the mapping, ack.
    char byte;
    if (ReadExact(doorbell[0], &byte, 1)) {
      volatile uint64_t sink =
          WalkChecksum(static_cast<uint8_t*>(region), bytes);
      (void)sink;
      WriteExact(done[1], "k", 1);
    }
    ::_exit(0);
  }

  FillData(static_cast<uint8_t*>(region), bytes);  // data initialization
  const int64_t start = asbase::MonoNanos();
  if (!WriteExact(doorbell[1], "!", 1)) {
    return asbase::Internal("doorbell write failed");
  }
  char ack;
  if (!ReadExact(done[0], &ack, 1)) {
    return asbase::Internal("receiver died");
  }
  const int64_t elapsed = asbase::MonoNanos() - start;

  ::waitpid(child, nullptr, 0);
  ::close(doorbell[0]);
  ::close(doorbell[1]);
  ::close(done[0]);
  ::close(done[1]);
  ::munmap(region, bytes);
  return elapsed;
}

// ------------------------------------------------------ inter-process TCP

asbase::Result<int64_t> InterProcessTcp(size_t bytes) {
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return asbase::Internal("socket failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  int enable = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd, 1) != 0) {
    ::close(listen_fd);
    return asbase::Internal("bind/listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);

  pid_t child = ::fork();
  if (child < 0) {
    ::close(listen_fd);
    return asbase::Internal("fork failed");
  }
  if (child == 0) {
    // Receiver: accept, drain all bytes, walk them, ack, exit.
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      std::vector<uint8_t> data(bytes);
      if (ReadExact(fd, data.data(), bytes)) {
        volatile uint64_t sink = WalkChecksum(data.data(), bytes);
        (void)sink;
        WriteExact(fd, "k", 1);
      }
      ::close(fd);
    }
    ::_exit(0);
  }

  std::vector<uint8_t> data(bytes);
  FillData(data.data(), bytes);

  // Timed from connection establishment (§2.3).
  const int64_t start = asbase::MonoNanos();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      !WriteExact(fd, data.data(), bytes)) {
    ::close(fd);
    ::close(listen_fd);
    ::waitpid(child, nullptr, 0);
    return asbase::Internal("tcp send failed");
  }
  char ack;
  if (!ReadExact(fd, &ack, 1)) {
    ::close(fd);
    ::close(listen_fd);
    ::waitpid(child, nullptr, 0);
    return asbase::Internal("receiver died");
  }
  const int64_t elapsed = asbase::MonoNanos() - start;

  ::close(fd);
  ::close(listen_fd);
  ::waitpid(child, nullptr, 0);
  return elapsed;
}

// ----------------------------------------------------------- inter-VM TCP

asbase::Result<int64_t> InterVmTcp(size_t bytes) {
  // Two "MicroVMs" on the virtual switch; every packet pays the modeled
  // virtio/vmexit crossing cost.
  asnet::LinkModel model;
  model.latency_nanos = asbase::SimCostModel::Global().Scaled(
      asbase::SimCostModel::Global().inter_vm_packet_nanos);
  asnet::VirtualSwitch fabric(model);
  auto server_port = fabric.Attach(asnet::MakeAddr(10, 1, 0, 1));
  auto client_port = fabric.Attach(asnet::MakeAddr(10, 1, 0, 2));
  asnet::NetStack server_stack(server_port);
  asnet::NetStack client_stack(client_port);

  auto listener = server_stack.Listen(9000);
  if (!listener.ok()) {
    return listener.status();
  }
  asbase::Status receiver_status = asbase::OkStatus();
  std::thread receiver([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(60));
    if (!connection.ok()) {
      receiver_status = connection.status();
      return;
    }
    std::vector<uint8_t> data(bytes);
    auto n = (*connection)->RecvAll(data);
    if (!n.ok() || *n != bytes) {
      receiver_status = asbase::Internal("short inter-vm receive");
      return;
    }
    volatile uint64_t sink = WalkChecksum(data.data(), bytes);
    (void)sink;
    (*connection)->Send(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>("k"), 1));
    (*connection)->Close();
  });

  std::vector<uint8_t> data(bytes);
  FillData(data.data(), bytes);

  const int64_t start = asbase::MonoNanos();
  auto connection =
      client_stack.Connect(server_stack.addr(), 9000, std::chrono::seconds(60));
  if (!connection.ok()) {
    receiver.join();
    return connection.status();
  }
  auto sent = (*connection)->Send(data);
  if (!sent.ok()) {
    receiver.join();
    return sent.status();
  }
  uint8_t ack;
  auto got = (*connection)->Recv(std::span<uint8_t>(&ack, 1));
  const int64_t elapsed = asbase::MonoNanos() - start;
  receiver.join();
  if (!got.ok() || !receiver_status.ok()) {
    return asbase::Internal("inter-vm receiver failed");
  }
  return elapsed;
}

// ---------------------------------------------------------------- pipe IPC

asbase::Result<int64_t> PipeIpc(size_t bytes) {
  int data_pipe[2], done_pipe[2];
  if (::pipe(data_pipe) != 0 || ::pipe(done_pipe) != 0) {
    return asbase::Internal("pipe failed");
  }
  pid_t child = ::fork();
  if (child < 0) {
    return asbase::Internal("fork failed");
  }
  if (child == 0) {
    std::vector<uint8_t> data(bytes);
    if (ReadExact(data_pipe[0], data.data(), bytes)) {
      volatile uint64_t sink = WalkChecksum(data.data(), bytes);
      (void)sink;
      WriteExact(done_pipe[1], "k", 1);
    }
    ::_exit(0);
  }
  std::vector<uint8_t> data(bytes);
  FillData(data.data(), bytes);

  const int64_t start = asbase::MonoNanos();
  if (!WriteExact(data_pipe[1], data.data(), bytes)) {
    ::waitpid(child, nullptr, 0);
    return asbase::Internal("pipe write failed");
  }
  char ack;
  if (!ReadExact(done_pipe[0], &ack, 1)) {
    ::waitpid(child, nullptr, 0);
    return asbase::Internal("receiver died");
  }
  const int64_t elapsed = asbase::MonoNanos() - start;
  ::waitpid(child, nullptr, 0);
  for (int fd : {data_pipe[0], data_pipe[1], done_pipe[0], done_pipe[1]}) {
    ::close(fd);
  }
  return elapsed;
}

// ------------------------------------------------------------------ redis

asbase::Result<int64_t> Redis(size_t bytes) {
  KvServer server;
  AS_RETURN_IF_ERROR(server.Start());
  auto sender = KvClient::Connect(server.port());
  auto receiver = KvClient::Connect(server.port());
  if (!sender.ok() || !receiver.ok()) {
    return asbase::Internal("kv clients failed to connect");
  }
  std::vector<uint8_t> data(bytes);
  FillData(data.data(), bytes);

  const int64_t start = asbase::MonoNanos();
  AS_RETURN_IF_ERROR((*sender)->Set("xfer", data));
  AS_ASSIGN_OR_RETURN(std::vector<uint8_t> got, (*receiver)->Get("xfer"));
  volatile uint64_t sink = WalkChecksum(got.data(), got.size());
  (void)sink;
  const int64_t elapsed = asbase::MonoNanos() - start;
  if (got.size() != bytes) {
    return asbase::DataLoss("redis returned wrong size");
  }
  return elapsed;
}

}  // namespace

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kFunctionCall:
      return "function-call";
    case TransportKind::kSharedMemory:
      return "shared-memory";
    case TransportKind::kInterProcessTcp:
      return "inter-process-tcp";
    case TransportKind::kInterVmTcp:
      return "inter-vm-tcp";
    case TransportKind::kPipeIpc:
      return "pipe-ipc";
    case TransportKind::kRedis:
      return "redis";
  }
  return "?";
}

asbase::Result<int64_t> MeasureTransfer(TransportKind kind, size_t bytes) {
  switch (kind) {
    case TransportKind::kFunctionCall:
      return FunctionCall(bytes);
    case TransportKind::kSharedMemory:
      return SharedMemory(bytes);
    case TransportKind::kInterProcessTcp:
      return InterProcessTcp(bytes);
    case TransportKind::kInterVmTcp:
      return InterVmTcp(bytes);
    case TransportKind::kPipeIpc:
      return PipeIpc(bytes);
    case TransportKind::kRedis:
      return Redis(bytes);
  }
  return asbase::InvalidArgument("unknown transport");
}

}  // namespace asbl
