// Sandbox boot simulators for the comparison systems (Fig 2 / Fig 10).
//
// This machine cannot run Firecracker, Kata, gVisor or KVM, so cold starts
// of those sandboxes are *modeled*: every profile is a pipeline of boot
// stages, each combining (a) real work executed here — allocating and
// touching guest memory, loading a kernel/runtime image buffer, building
// page-table-like index structures — with (b) a calibrated stage latency
// from the published numbers collected in asbase::SimCostModel, scaled by
// the model's `scale` factor (printed by every bench). See DESIGN.md §1.

#ifndef SRC_BASELINES_SIM_PROFILES_H_
#define SRC_BASELINES_SIM_PROFILES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace asbl {

struct BootStage {
  std::string name;
  // Modeled latency (nanoseconds, unscaled; SimCostModel.scale applies).
  int64_t model_nanos = 0;
  // Real work executed for this stage (may be empty).
  std::function<void()> work;
};

struct BootProfile {
  std::string name;
  std::vector<BootStage> stages;
  // Whether the platform gives the function a guest kernel (isolation class
  // annotation used in bench output).
  bool guest_kernel = false;
};

// Executes the profile; returns total boot nanoseconds (work + scaled model).
int64_t SimulateBoot(const BootProfile& profile);

// --- profiles (§2.2, §8.2) ---
BootProfile FirecrackerMicroVmProfile();   // VMM + guest Linux boot
BootProfile KataContainerProfile();        // Firecracker + kata agent + OCI
BootProfile VirtinesProfile();             // KVM setup, no guest kernel
BootProfile UnikraftProfile();             // Firecracker + unikernel boot
BootProfile GvisorProfile();               // Go runtime + sentry + OCI
BootProfile ContainerProfile();            // namespaces/cgroups (OpenFaaS)
// WASM runtimes: process-level init + module load/validation (real work on
// `module_image_bytes` of bytecode).
BootProfile WasmerProcessProfile(size_t module_image_bytes);
BootProfile WasmerThreadProfile(size_t module_image_bytes);

}  // namespace asbl

#endif  // SRC_BASELINES_SIM_PROFILES_H_
