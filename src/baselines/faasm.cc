#include "src/baselines/faasm.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <thread>

#include "src/baselines/sim_profiles.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/vm/vm.h"

namespace asbl {
namespace {

using asbase::SimCostModel;

std::string SlotName(const std::string& base, int64_t i, int64_t j) {
  std::string slot = base;
  if (i >= 0) {
    slot += "-" + std::to_string(i);
  }
  if (j >= 0) {
    slot += "-" + std::to_string(j);
  }
  return slot;
}

// Worker-local shared state tier.
struct LocalState {
  std::mutex mutex;
  std::map<std::string, std::vector<uint8_t>> table;
  std::string result;
};

void ChargePageFaults(size_t bytes) {
  const auto& model = SimCostModel::Global();
  const int64_t pages = static_cast<int64_t>((bytes + 4095) / 4096);
  asbase::SpinFor(model.Scaled(model.faasm_page_fault_nanos) * pages);
}

// Hostcall table bound to Faasm's state layer for one function invocation.
class FaasmHost {
 public:
  FaasmHost(const FaasmRuntime::Options* options, LocalState* state,
            KvClient* kv, int stage, int instance, int instance_count,
            const asbase::Json* params)
      : options_(options), state_(state), kv_(kv), stage_(stage),
        instance_(instance), instance_count_(instance_count),
        params_(params) {
    Register();
  }

  const asvm::HostTable& table() const { return table_; }

 private:
  void Register();

  const FaasmRuntime::Options* options_;
  LocalState* state_;
  KvClient* kv_;
  int stage_;
  int instance_;
  int instance_count_;
  const asbase::Json* params_;

  asvm::HostTable table_;
  std::map<int64_t, int> open_files_;  // guest fd -> host fd
  int64_t next_fd_ = 3;
};

void FaasmHost::Register() {
  table_.Register(
      "ctx_instance", 0,
      [this](asvm::Vm&, std::span<const int64_t>) -> asbase::Result<int64_t> {
        return instance_;
      });
  table_.Register(
      "ctx_instances", 0,
      [this](asvm::Vm&, std::span<const int64_t>) -> asbase::Result<int64_t> {
        return instance_count_;
      });
  table_.Register(
      "ctx_stage", 0,
      [this](asvm::Vm&, std::span<const int64_t>) -> asbase::Result<int64_t> {
        return stage_;
      });
  table_.Register(
      "ctx_param_int", 2,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string name,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        return (*params_)[name].as_int();
      });
  table_.Register(
      "ctx_param_str", 4,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string name,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string& value = (*params_)[name].as_string();
        const size_t n =
            std::min<size_t>(value.size(), static_cast<size_t>(args[3]));
        AS_RETURN_IF_ERROR(vm.WriteGuestBytes(
            static_cast<uint64_t>(args[2]),
            std::span<const uint8_t>(
                reinterpret_cast<const uint8_t*>(value.data()), n)));
        return static_cast<int64_t>(n);
      });
  table_.Register(
      "ctx_set_result_int", 1,
      [this](asvm::Vm&,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->result = "vm=" + std::to_string(args[0]);
        return 0;
      });

  // ---- files: host filesystem under input_dir ----
  table_.Register(
      "path_filestat_get", 2,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string full = options_->input_dir + "/" + path;
        int fd = ::open(full.c_str(), O_RDONLY);
        if (fd < 0) {
          return asbase::NotFound("faasm: no input " + full);
        }
        const off_t size = ::lseek(fd, 0, SEEK_END);
        ::close(fd);
        return static_cast<int64_t>(size);
      });
  table_.Register(
      "path_open", 3,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string path,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string full = options_->input_dir + "/" + path;
        int fd = ::open(full.c_str(), args[2] & 1 ? O_RDWR | O_CREAT | O_TRUNC
                                                  : O_RDONLY,
                        0644);
        if (fd < 0) {
          return asbase::NotFound("faasm: cannot open " + full);
        }
        const int64_t guest_fd = next_fd_++;
        open_files_[guest_fd] = fd;
        return guest_fd;
      });
  table_.Register(
      "fd_read", 3,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        auto it = open_files_.find(args[0]);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("faasm: bad fd");
        }
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[1]),
                                         static_cast<uint64_t>(args[2])));
        ssize_t n = ::read(it->second, vm.memory().data() + args[1],
                           static_cast<size_t>(args[2]));
        if (n < 0) {
          return asbase::DataLoss("faasm: read failed");
        }
        return static_cast<int64_t>(n);
      });
  table_.Register(
      "fd_close", 1,
      [this](asvm::Vm&,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        auto it = open_files_.find(args[0]);
        if (it == open_files_.end()) {
          return asbase::InvalidArgument("faasm: bad fd");
        }
        ::close(it->second);
        open_files_.erase(it);
        return 0;
      });
  table_.Register(
      "clock_time_get", 1,
      [](asvm::Vm&, std::span<const int64_t>) -> asbase::Result<int64_t> {
        return asbase::WallMicros();
      });

  // ---- two-tier state transfers ----
  table_.Register(
      "buffer_register2", 6,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string base,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string slot = SlotName(base, args[2], args[3]);
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[4]),
                                         static_cast<uint64_t>(args[5])));
        const size_t len = static_cast<size_t>(args[5]);
        // Local tier: copy into the shared region, faulting its pages in.
        ChargePageFaults(len);
        std::vector<uint8_t> copy(len);
        if (len > 0) {
          std::memcpy(copy.data(), vm.memory().data() + args[4], len);
        }
        {
          std::lock_guard<std::mutex> lock(state_->mutex);
          state_->table[slot] = std::move(copy);
        }
        // Global tier: synchronize a state descriptor through Redis.
        uint8_t descriptor[16];
        std::memset(descriptor, 0, sizeof(descriptor));
        std::memcpy(descriptor, &len, sizeof(len));
        return kv_->Set("state:" + slot, descriptor).ok()
                   ? 0
                   : -1;
      });
  table_.Register(
      "access_buffer2", 6,
      [this](asvm::Vm& vm,
             std::span<const int64_t> args) -> asbase::Result<int64_t> {
        AS_ASSIGN_OR_RETURN(std::string base,
                            vm.ReadGuestString(
                                static_cast<uint64_t>(args[0]),
                                static_cast<uint64_t>(args[1])));
        const std::string slot = SlotName(base, args[2], args[3]);
        // Consult the global tier first (scheduler/state lookup).
        auto descriptor = kv_->Get("state:" + slot);
        if (!descriptor.ok()) {
          return asbase::NotFound("faasm: no state for " + slot);
        }
        std::vector<uint8_t> data;
        {
          std::lock_guard<std::mutex> lock(state_->mutex);
          auto it = state_->table.find(slot);
          if (it == state_->table.end()) {
            return asbase::NotFound("faasm: local state missing for " + slot);
          }
          data = std::move(it->second);
          state_->table.erase(it);
        }
        const size_t n =
            std::min<size_t>(data.size(), static_cast<size_t>(args[5]));
        AS_RETURN_IF_ERROR(vm.CheckRange(static_cast<uint64_t>(args[4]), n));
        ChargePageFaults(n);  // mapping the region into the Faaslet
        if (n > 0) {
          std::memcpy(vm.memory().data() + args[4], data.data(), n);
        }
        kv_->Del("state:" + slot);
        return static_cast<int64_t>(n);
      });
}

}  // namespace

FaasmRuntime::FaasmRuntime(Options options) : options_(std::move(options)) {
  kv_ = std::make_unique<KvServer>();
  AS_CHECK(kv_->Start().ok()) << "faasm global state tier failed to start";
}

FaasmRuntime::~FaasmRuntime() = default;

asbase::Result<BaselineRunStats> FaasmRuntime::Run(
    const aswl::VmWorkflowSpec& workflow, const asbase::Json& params) {
  BaselineRunStats stats;
  const int64_t start = asbase::MonoNanos();

  // Worker cold start: Faaslets are threads in a warm worker; the first
  // invocation instantiates the module (WAVM-style).
  size_t image_bytes = 0;
  for (const auto& stage : workflow.stages) {
    image_bytes = std::max(image_bytes, stage.module->ImageBytes());
  }
  {
    const int64_t boot_start = asbase::MonoNanos();
    SimulateBoot(WasmerThreadProfile(image_bytes));
    stats.cold_start_nanos = asbase::MonoNanos() - boot_start;
  }

  LocalState state;

  for (size_t stage_index = 0; stage_index < workflow.stages.size();
       ++stage_index) {
    const auto& stage = workflow.stages[stage_index];
    // Control plane: the distributed scheduler plans this stage's Faaslets
    // (modeled; the per-instance KV round trips below are real).
    asbase::SpinFor(SimCostModel::Global().Scaled(
        SimCostModel::Global().faasm_stage_dispatch_nanos));
    std::vector<std::thread> threads;
    std::vector<asbase::Status> outcomes(
        static_cast<size_t>(stage.instances), asbase::OkStatus());

    for (int instance = 0; instance < stage.instances; ++instance) {
      threads.emplace_back([&, instance, stage_index] {
        // Control plane: every dispatch goes through the distributed
        // scheduler state (one round trip against the global tier).
        auto kv = KvClient::Connect(kv_->port());
        if (!kv.ok()) {
          outcomes[static_cast<size_t>(instance)] = kv.status();
          return;
        }
        const std::string dispatch_key =
            "sched:" + workflow.name + ":" + std::to_string(stage_index) +
            ":" + std::to_string(instance);
        uint8_t token = 1;
        (*kv)->Set(dispatch_key, std::span<const uint8_t>(&token, 1));
        (*kv)->Get(dispatch_key);

        if (options_.python) {
          // CPython runtime init: stream the stdlib image from the worker's
          // filesystem and checksum it.
          const std::string stdlib =
              options_.input_dir + "/python_stdlib.img";
          int fd = ::open(stdlib.c_str(), O_RDONLY);
          if (fd >= 0) {
            std::vector<uint8_t> buffer(1 << 20);
            uint64_t checksum = 0;
            ssize_t n;
            while ((n = ::read(fd, buffer.data(), buffer.size())) > 0) {
              for (ssize_t k = 0; k < n; k += 64) {
                checksum += buffer[static_cast<size_t>(k)];
              }
            }
            ::close(fd);
            volatile uint64_t sink = checksum;
            (void)sink;
          }
          asbase::SpinFor(SimCostModel::Global().Scaled(
              SimCostModel::Global().cpython_bootstrap_nanos));
        }

        FaasmHost host(&options_, &state, kv->get(),
                       static_cast<int>(stage_index), instance,
                       stage.instances, &params);
        asvm::Vm vm(stage.module.get(), &host.table(),
                    options_.python ? asvm::VmMode::kBoxed
                                    : asvm::VmMode::kAot);
        auto result = vm.Run();
        if (!result.ok()) {
          outcomes[static_cast<size_t>(instance)] = result.status();
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    for (const auto& outcome : outcomes) {
      if (!outcome.ok()) {
        return outcome;
      }
    }
  }

  stats.end_to_end_nanos = asbase::MonoNanos() - start;
  stats.result = state.result;
  return stats;
}

}  // namespace asbl
