// Baseline serverless runtimes (§8.1 "Comparison systems").
//
// Each runtime executes the same generic applications (src/workloads) with
// its own control plane, data plane and sandbox model:
//
//   Faastlane         one process, thread per function, MPK keys; reference
//                     passing for sequential stages, kernel-pipe IPC when a
//                     stage runs instances in parallel (the paper's GIL
//                     workaround carried over faithfully).
//   Faastlane-refer   reference passing always.
//   *-kata            the same, deployed in a Kata MicroVM: cold start pays
//                     the Firecracker+Kata boot model, file reads pay the
//                     virtio-blk toll, compute pays the nested-paging toll.
//   OpenFaaS          container-style: a forked process per function
//                     instance (paying the container-setup model), data
//                     passing through the mini-redis server.
//   OpenFaaS-gVisor   plus the sentry boot and a per-I/O ptrace interception
//                     charge.
//
// (Faasm executes WASM only and lives in faasm.h.)

#ifndef SRC_BASELINES_RUNTIMES_H_
#define SRC_BASELINES_RUNTIMES_H_

#include <map>
#include <memory>
#include <mutex>

#include "src/baselines/kvstore.h"
#include "src/workloads/exec_env.h"

namespace asbl {

enum class BaselineKind {
  kFaastlane,
  kFaastlaneRefer,
  kFaastlaneKata,
  kFaastlaneReferKata,
  kOpenFaas,
  kOpenFaasGvisor,
};

const char* BaselineKindName(BaselineKind kind);

struct PhaseNanos {
  int64_t read_input = 0;
  int64_t compute = 0;
  int64_t transfer = 0;
  int64_t wait = 0;
};

struct BaselineRunStats {
  int64_t cold_start_nanos = 0;   // sandbox/boot share of the run
  int64_t end_to_end_nanos = 0;
  PhaseNanos phases;              // summed over instances (thread runtimes)
  std::string result;
};

class BaselineRuntime {
 public:
  struct Options {
    BaselineKind kind = BaselineKind::kFaastlane;
    // Directory on the host filesystem holding workflow input files
    // (read_input paths are resolved against it).
    std::string input_dir = "/tmp";
    // Serve intermediate data from memory instead of files — the
    // Faastlane-refer-kata-on-ramfs configuration of Fig 16.
    bool ramfs_inputs = false;
  };

  explicit BaselineRuntime(Options options);
  ~BaselineRuntime();

  // Pre-registers an input "file" for ramfs_inputs mode.
  void AddRamInput(const std::string& name, std::vector<uint8_t> bytes);

  // Runs the workflow end to end, including the runtime's sandbox cold
  // start, and returns timing + the workflow result.
  asbase::Result<BaselineRunStats> Run(const aswl::GenericWorkflow& workflow,
                                       const asbase::Json& params);

  uint16_t kv_port() const;

 private:
  asbase::Result<BaselineRunStats> RunThreaded(
      const aswl::GenericWorkflow& workflow, const asbase::Json& params);
  asbase::Result<BaselineRunStats> RunForked(
      const aswl::GenericWorkflow& workflow, const asbase::Json& params);

  asbase::Result<std::vector<uint8_t>> ReadInput(const std::string& path);

  Options options_;
  std::unique_ptr<KvServer> kv_;  // openfaas data plane (owned)
  std::map<std::string, std::vector<uint8_t>> ram_inputs_;
};

}  // namespace asbl

#endif  // SRC_BASELINES_RUNTIMES_H_
