#include "src/baselines/kvstore.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>

#include "src/common/clock.h"

namespace asbl {
namespace {

// op codes
constexpr uint8_t kOpSet = 1;
constexpr uint8_t kOpGet = 2;
constexpr uint8_t kOpDel = 3;
constexpr uint8_t kOpTake = 4;
// Blocking get: value field carries the timeout as 8 bytes of nanoseconds;
// the server parks the connection until the key exists or the timeout fires.
constexpr uint8_t kOpWaitGet = 5;
// response status
constexpr uint8_t kOk = 0;
constexpr uint8_t kMissing = 1;

bool ReadExact(int fd, void* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::recv(fd, static_cast<char*>(buffer) + done, len - done, 0);
    if (n <= 0) {
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// Gather-writes all iovecs, resuming after partial writes. One syscall per
// message in the common case instead of one per field — the kernel-socket
// mirror of the netstack's gather TX path.
bool WritevExact(int fd, struct iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    size_t sent = static_cast<size_t>(n);
    while (iovcnt > 0 && sent >= iov->iov_len) {
      sent -= iov->iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0 && sent > 0) {
      iov->iov_base = static_cast<char*>(iov->iov_base) + sent;
      iov->iov_len -= sent;
    }
  }
  return true;
}

}  // namespace

KvServer::~KvServer() { Stop(); }

asbase::Status KvServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return asbase::Internal("socket() failed");
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return asbase::Unavailable("kv server cannot bind");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return asbase::OkStatus();
}

void KvServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Wake connections parked in WAITGET so their worker threads can be
  // joined below. The empty critical section orders the running_ store
  // before any waiter's predicate check (no lost wakeup).
  {
    std::lock_guard<std::mutex> lock(mutex_);
  }
  cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

size_t KvServer::keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.size();
}

void KvServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load()) {
        continue;
      }
      break;
    }
    int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void KvServer::ServeConnection(int fd) {
  while (true) {
    uint8_t op;
    uint32_t key_len, value_len;
    if (!ReadExact(fd, &op, 1) || !ReadExact(fd, &key_len, 4)) {
      break;
    }
    std::string key(key_len, '\0');
    if (key_len > 0 && !ReadExact(fd, key.data(), key_len)) {
      break;
    }
    if (!ReadExact(fd, &value_len, 4)) {
      break;
    }
    std::vector<uint8_t> value(value_len);
    if (value_len > 0 && !ReadExact(fd, value.data(), value_len)) {
      break;
    }

    ops_.fetch_add(1, std::memory_order_relaxed);
    uint8_t status = kOk;
    std::vector<uint8_t> reply;
    if (op == kOpWaitGet) {
      int64_t timeout_nanos = 0;
      if (value.size() == sizeof(timeout_nanos)) {
        std::memcpy(&timeout_nanos, value.data(), sizeof(timeout_nanos));
      }
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::nanoseconds(timeout_nanos);
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait_until(lock, deadline, [&] {
        return !running_.load() || table_.find(key) != table_.end();
      });
      auto it = table_.find(key);
      if (it != table_.end()) {
        reply = it->second;
      } else {
        status = kMissing;  // timed out (or server stopping)
      }
    } else {
      std::lock_guard<std::mutex> lock(mutex_);
      switch (op) {
        case kOpSet:
          table_[key] = std::move(value);
          cv_.notify_all();
          break;
        case kOpGet: {
          auto it = table_.find(key);
          if (it == table_.end()) {
            status = kMissing;
          } else {
            reply = it->second;
          }
          break;
        }
        case kOpDel:
          if (table_.erase(key) == 0) {
            status = kMissing;
          }
          break;
        case kOpTake: {
          auto it = table_.find(key);
          if (it == table_.end()) {
            status = kMissing;
          } else {
            reply = std::move(it->second);
            table_.erase(it);
          }
          break;
        }
        default:
          status = 255;
      }
    }
    uint32_t reply_len = static_cast<uint32_t>(reply.size());
    struct iovec iov[3] = {
        {&status, 1},
        {&reply_len, 4},
        {reply.data(), reply.size()},
    };
    if (!WritevExact(fd, iov, reply_len > 0 ? 3 : 2)) {
      break;
    }
  }
  ::close(fd);
}

asbase::Result<std::unique_ptr<KvClient>> KvClient::Connect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return asbase::Internal("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return asbase::Unavailable("cannot reach kv server on port " +
                               std::to_string(port));
  }
  int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return std::unique_ptr<KvClient>(new KvClient(fd));
}

KvClient::~KvClient() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

asbase::Result<std::vector<uint8_t>> KvClient::Call(
    uint8_t op, const std::string& key, std::span<const uint8_t> value) {
  uint32_t key_len = static_cast<uint32_t>(key.size());
  uint32_t value_len = static_cast<uint32_t>(value.size());
  struct iovec iov[5] = {
      {&op, 1},
      {&key_len, 4},
      {const_cast<char*>(key.data()), key.size()},
      {&value_len, 4},
      {const_cast<uint8_t*>(value.data()), value.size()},
  };
  if (!WritevExact(fd_, iov, value_len > 0 ? 5 : 4)) {
    return asbase::Unavailable("kv connection lost (send)");
  }
  uint8_t status;
  uint32_t reply_len;
  if (!ReadExact(fd_, &status, 1) || !ReadExact(fd_, &reply_len, 4)) {
    return asbase::Unavailable("kv connection lost (recv)");
  }
  std::vector<uint8_t> reply(reply_len);
  if (reply_len > 0 && !ReadExact(fd_, reply.data(), reply_len)) {
    return asbase::Unavailable("kv connection lost (recv body)");
  }
  if (status == kMissing) {
    return asbase::NotFound("key '" + key + "' not in store");
  }
  if (status != kOk) {
    return asbase::Internal("kv protocol error");
  }
  return reply;
}

asbase::Status KvClient::Set(const std::string& key,
                             std::span<const uint8_t> value) {
  return Call(kOpSet, key, value).status();
}

asbase::Result<std::vector<uint8_t>> KvClient::Get(const std::string& key) {
  return Call(kOpGet, key, {});
}

asbase::Status KvClient::Del(const std::string& key) {
  return Call(kOpDel, key, {}).status();
}

asbase::Result<std::vector<uint8_t>> KvClient::Take(const std::string& key) {
  return Call(kOpTake, key, {});
}

asbase::Result<std::vector<uint8_t>> KvClient::WaitGet(
    const std::string& key, std::chrono::nanoseconds timeout) {
  // One WAITGET round trip: the server blocks on its condition variable
  // until the key is Set, so no polling traffic crosses the socket.
  int64_t timeout_nanos = timeout.count();
  auto value = Call(
      kOpWaitGet, key,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(&timeout_nanos),
          sizeof(timeout_nanos)));
  if (!value.ok() && value.status().code() == asbase::ErrorCode::kNotFound) {
    return asbase::Unavailable("timed out waiting for key '" + key + "'");
  }
  return value;
}

}  // namespace asbl
