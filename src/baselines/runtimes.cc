#include "src/baselines/runtimes.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "src/baselines/sim_profiles.h"
#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/mpk/pkey_runtime.h"

namespace asbl {
namespace {

using asbase::SimCostModel;

bool ReadExactFd(int fd, void* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, static_cast<char*>(buffer) + done, len - done);
    if (n <= 0) {
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteExactFd(int fd, const void* buffer, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, static_cast<const char*>(buffer) + done,
                        len - done);
    if (n <= 0) {
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

// Copies `data` through a kernel pipe (Faastlane's IPC mode): real write +
// read syscalls, two kernel crossings, data passes through pipe buffers.
asbase::Result<std::vector<uint8_t>> PipeCopy(std::span<const uint8_t> data) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return asbase::Internal("pipe() failed");
  }
  std::vector<uint8_t> out(data.size());
  bool read_ok = false;
  std::thread drainer(
      [&] { read_ok = ReadExactFd(fds[0], out.data(), out.size()); });
  const bool write_ok = WriteExactFd(fds[1], data.data(), data.size());
  ::close(fds[1]);
  drainer.join();
  ::close(fds[0]);
  if (!write_ok || (!read_ok && !data.empty())) {
    return asbase::Internal("pipe transfer failed");
  }
  return out;
}

// Sum of the modeled (non-work) stage latencies of a profile, scaled.
int64_t ProfileModelNanos(const BootProfile& profile) {
  int64_t total = 0;
  for (const auto& stage : profile.stages) {
    total += SimCostModel::Global().Scaled(stage.model_nanos);
  }
  return total;
}

// Per-instance phase tracking identical in spirit to FunctionContext's.
class PhaseTracker {
 public:
  void Begin(aswl::EnvPhase phase) {
    const int64_t now = asbase::MonoNanos();
    if (started_) {
      Account(now);
    }
    current_ = phase;
    mark_ = now;
    started_ = true;
  }
  PhaseNanos Finish() {
    if (started_) {
      Account(asbase::MonoNanos());
      started_ = false;
    }
    return phases_;
  }

 private:
  void Account(int64_t now) {
    const int64_t elapsed = now - mark_;
    switch (current_) {
      case aswl::EnvPhase::kReadInput:
        phases_.read_input += elapsed;
        break;
      case aswl::EnvPhase::kCompute:
        phases_.compute += elapsed;
        break;
      case aswl::EnvPhase::kTransfer:
        phases_.transfer += elapsed;
        break;
    }
    mark_ = now;
  }

  aswl::EnvPhase current_ = aswl::EnvPhase::kCompute;
  int64_t mark_ = 0;
  bool started_ = false;
  PhaseNanos phases_;
};

std::vector<uint8_t> ReadHostFile(const std::string& path,
                                  asbase::Status* status) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *status = asbase::NotFound("input file " + path + " not found");
    return {};
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  ::lseek(fd, 0, SEEK_SET);
  std::vector<uint8_t> data(static_cast<size_t>(size));
  if (!ReadExactFd(fd, data.data(), data.size())) {
    *status = asbase::DataLoss("short read of " + path);
    ::close(fd);
    return {};
  }
  ::close(fd);
  *status = asbase::OkStatus();
  return data;
}

}  // namespace

const char* BaselineKindName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kFaastlane:
      return "faastlane";
    case BaselineKind::kFaastlaneRefer:
      return "faastlane-refer";
    case BaselineKind::kFaastlaneKata:
      return "faastlane-kata";
    case BaselineKind::kFaastlaneReferKata:
      return "faastlane-refer-kata";
    case BaselineKind::kOpenFaas:
      return "openfaas";
    case BaselineKind::kOpenFaasGvisor:
      return "openfaas-gvisor";
  }
  return "?";
}

BaselineRuntime::BaselineRuntime(Options options)
    : options_(std::move(options)) {
  if (options_.kind == BaselineKind::kOpenFaas ||
      options_.kind == BaselineKind::kOpenFaasGvisor) {
    kv_ = std::make_unique<KvServer>();
    AS_CHECK(kv_->Start().ok()) << "mini-redis failed to start";
  }
}

BaselineRuntime::~BaselineRuntime() = default;

uint16_t BaselineRuntime::kv_port() const {
  return kv_ == nullptr ? 0 : kv_->port();
}

void BaselineRuntime::AddRamInput(const std::string& name,
                                  std::vector<uint8_t> bytes) {
  ram_inputs_[name] = std::move(bytes);
}

asbase::Result<std::vector<uint8_t>> BaselineRuntime::ReadInput(
    const std::string& path) {
  if (options_.ramfs_inputs) {
    auto it = ram_inputs_.find(path);
    if (it == ram_inputs_.end()) {
      return asbase::NotFound("no ram input named " + path);
    }
    return it->second;  // copy, like reading from a ram-backed fs
  }
  asbase::Status status = asbase::OkStatus();
  std::vector<uint8_t> data = ReadHostFile(options_.input_dir + "/" + path,
                                           &status);
  if (!status.ok()) {
    return status;
  }
  const bool kata = options_.kind == BaselineKind::kFaastlaneKata ||
                    options_.kind == BaselineKind::kFaastlaneReferKata;
  if (kata) {
    // Guest reads cross virtio-blk.
    asbase::SpinFor(SimCostModel::Global().Scaled(
        SimCostModel::Global().virtio_blk_nanos_per_kib *
        static_cast<int64_t>(data.size() / 1024)));
  }
  return data;
}

asbase::Result<BaselineRunStats> BaselineRuntime::Run(
    const aswl::GenericWorkflow& workflow, const asbase::Json& params) {
  switch (options_.kind) {
    case BaselineKind::kOpenFaas:
    case BaselineKind::kOpenFaasGvisor:
      return RunForked(workflow, params);
    default:
      return RunThreaded(workflow, params);
  }
}

// ------------------------------------------------------- thread runtimes

asbase::Result<BaselineRunStats> BaselineRuntime::RunThreaded(
    const aswl::GenericWorkflow& workflow, const asbase::Json& params) {
  const auto& model = SimCostModel::Global();
  const bool kata = options_.kind == BaselineKind::kFaastlaneKata ||
                    options_.kind == BaselineKind::kFaastlaneReferKata;
  const bool always_refer =
      options_.kind == BaselineKind::kFaastlaneRefer ||
      options_.kind == BaselineKind::kFaastlaneReferKata;

  BaselineRunStats stats;
  const int64_t start = asbase::MonoNanos();

  // Cold start: Faastlane spawns a workflow process and sets up its MPK
  // domains; the kata variants boot a MicroVM around it.
  {
    const int64_t boot_start = asbase::MonoNanos();
    if (kata) {
      SimulateBoot(KataContainerProfile());
    } else {
      asbase::SpinFor(model.Scaled(model.process_spawn_nanos));
    }
    asmpk::PkeyRuntime mpk(asmpk::MpkBackend::kEmulated);
    auto key_a = mpk.AllocateKey();
    auto key_b = mpk.AllocateKey();
    (void)key_a;
    (void)key_b;
    stats.cold_start_nanos = asbase::MonoNanos() - boot_start;
  }

  // In-process buffer table (reference passing).
  std::mutex table_mutex;
  std::map<std::string, std::shared_ptr<std::vector<uint8_t>>> table;

  std::mutex stats_mutex;
  std::string result;

  for (const auto& stage : workflow.stages) {
    int stage_instances = 0;
    for (const auto& function : stage.functions) {
      stage_instances += function.instances;
    }
    // Faastlane's documented behaviour: reference passing for sequential
    // execution, IPC when functions run in parallel (GIL workaround).
    const bool use_ipc = !always_refer && stage_instances > 1;

    struct Outcome {
      asbase::Status status = asbase::OkStatus();
      int64_t finished_at = 0;
    };
    std::vector<std::unique_ptr<Outcome>> outcomes;
    std::vector<std::thread> threads;

    int stage_index = static_cast<int>(&stage - workflow.stages.data());
    for (const auto& function : stage.functions) {
      for (int instance = 0; instance < function.instances; ++instance) {
        auto outcome = std::make_unique<Outcome>();
        Outcome* outcome_ptr = outcome.get();
        outcomes.push_back(std::move(outcome));
        threads.emplace_back([&, instance, stage_index, use_ipc, outcome_ptr,
                              fn = function.fn,
                              instances = function.instances] {
          PhaseTracker tracker;
          tracker.Begin(aswl::EnvPhase::kCompute);

          aswl::ExecEnv env;
          env.stage = stage_index;
          env.instance = instance;
          env.instance_count = instances;
          env.params = params;
          env.phase = [&tracker](aswl::EnvPhase phase) {
            tracker.Begin(phase);
          };
          env.set_result = [&](std::string value) {
            std::lock_guard<std::mutex> lock(stats_mutex);
            result = std::move(value);
          };
          env.read_input = [this](const std::string& path) {
            return ReadInput(path);
          };
          env.alloc = [](const std::string&, size_t size) {
            return aswl::EnvBuffer::FromVector(std::vector<uint8_t>(size));
          };
          env.send = [&, use_ipc](const std::string& slot,
                                  aswl::EnvBuffer buffer) -> asbase::Status {
            auto vec = std::static_pointer_cast<std::vector<uint8_t>>(
                buffer.owner);
            if (vec == nullptr) {
              return asbase::InvalidArgument("foreign buffer");
            }
            if (use_ipc) {
              AS_ASSIGN_OR_RETURN(std::vector<uint8_t> copied,
                                  PipeCopy(buffer.data));
              vec = std::make_shared<std::vector<uint8_t>>(std::move(copied));
            }
            std::lock_guard<std::mutex> lock(table_mutex);
            table[slot] = std::move(vec);
            return asbase::OkStatus();
          };
          env.recv =
              [&](const std::string& slot) -> asbase::Result<aswl::EnvBuffer> {
            std::shared_ptr<std::vector<uint8_t>> vec;
            {
              std::lock_guard<std::mutex> lock(table_mutex);
              auto it = table.find(slot);
              if (it == table.end()) {
                return asbase::NotFound("no buffer in slot " + slot);
              }
              vec = std::move(it->second);
              table.erase(it);
            }
            return aswl::EnvBuffer{
                std::span<uint8_t>(vec->data(), vec->size()), vec};
          };

          const int64_t fn_start = asbase::MonoNanos();
          outcome_ptr->status = fn(env);
          if (kata) {
            // Nested-paging overhead on guest compute ([65], Fig 16).
            asbase::SpinFor(static_cast<int64_t>(
                static_cast<double>(asbase::MonoNanos() - fn_start) *
                model.hw_virt_compute_fraction));
          }
          const PhaseNanos phases = tracker.Finish();
          outcome_ptr->finished_at = asbase::MonoNanos();
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats.phases.read_input += phases.read_input;
          stats.phases.compute += phases.compute;
          stats.phases.transfer += phases.transfer;
        });
      }
    }
    for (auto& thread : threads) {
      thread.join();
    }
    const int64_t barrier = asbase::MonoNanos();
    for (const auto& outcome : outcomes) {
      stats.phases.wait += barrier - outcome->finished_at;
      if (!outcome->status.ok()) {
        return outcome->status;
      }
    }
  }

  stats.end_to_end_nanos = asbase::MonoNanos() - start;
  stats.result = result;
  return stats;
}

// -------------------------------------------------------- forked runtimes

asbase::Result<BaselineRunStats> BaselineRuntime::RunForked(
    const aswl::GenericWorkflow& workflow, const asbase::Json& params) {
  const auto& model = SimCostModel::Global();
  const bool gvisor = options_.kind == BaselineKind::kOpenFaasGvisor;
  const uint16_t kv_port = kv_->port();

  BaselineRunStats stats;
  stats.cold_start_nanos = ProfileModelNanos(
      gvisor ? GvisorProfile() : ContainerProfile());
  const int64_t start = asbase::MonoNanos();

  const std::string result_key = "result:" + workflow.name;
  {
    auto cleaner = KvClient::Connect(kv_port);
    if (cleaner.ok()) {
      (*cleaner)->Del(result_key);
    }
  }

  for (size_t stage_index = 0; stage_index < workflow.stages.size();
       ++stage_index) {
    const auto& stage = workflow.stages[stage_index];
    std::vector<pid_t> children;
    for (const auto& function : stage.functions) {
      for (int instance = 0; instance < function.instances; ++instance) {
        pid_t pid = ::fork();
        if (pid < 0) {
          return asbase::Internal("fork failed");
        }
        if (pid == 0) {
          // ---- function sandbox (child process) ----
          // Container / sandbox cold start happens per function instance.
          SimulateBoot(gvisor ? GvisorProfile() : ContainerProfile());
          auto client = KvClient::Connect(kv_port);
          if (!client.ok()) {
            ::_exit(2);
          }
          auto intercept = [&](size_t bytes) {
            if (gvisor) {
              // ptrace interception: one charge per syscall; bulk I/O is
              // chunked by the runtime at 64 KiB.
              asbase::SpinFor(model.Scaled(model.ptrace_intercept_nanos) *
                              static_cast<int64_t>(1 + bytes / 65536));
            }
          };

          aswl::ExecEnv env;
          env.stage = static_cast<int>(stage_index);
          env.instance = instance;
          env.instance_count = function.instances;
          env.params = params;
          env.read_input =
              [&](const std::string& path)
              -> asbase::Result<std::vector<uint8_t>> {
            asbase::Status status = asbase::OkStatus();
            std::vector<uint8_t> data =
                ReadHostFile(options_.input_dir + "/" + path, &status);
            if (!status.ok()) {
              return status;
            }
            intercept(data.size());
            return data;
          };
          env.alloc = [](const std::string&, size_t size) {
            return aswl::EnvBuffer::FromVector(std::vector<uint8_t>(size));
          };
          env.send = [&](const std::string& slot,
                         aswl::EnvBuffer buffer) -> asbase::Status {
            intercept(buffer.data.size());
            return (*client)->Set(slot, buffer.data);
          };
          env.recv = [&](const std::string& slot)
              -> asbase::Result<aswl::EnvBuffer> {
            AS_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                                (*client)->Take(slot));
            intercept(data.size());
            return aswl::EnvBuffer::FromVector(std::move(data));
          };
          env.set_result = [&](std::string value) {
            (*client)->Set(result_key,
                           std::span<const uint8_t>(
                               reinterpret_cast<const uint8_t*>(value.data()),
                               value.size()));
          };

          asbase::Status status = function.fn(env);
          ::_exit(status.ok() ? 0 : 1);
        }
        children.push_back(pid);
      }
    }
    for (pid_t pid : children) {
      int wait_status = 0;
      ::waitpid(pid, &wait_status, 0);
      if (!WIFEXITED(wait_status) || WEXITSTATUS(wait_status) != 0) {
        return asbase::Internal("a function sandbox failed in stage " +
                                std::to_string(stage_index));
      }
    }
  }

  stats.end_to_end_nanos = asbase::MonoNanos() - start;
  auto client = KvClient::Connect(kv_port);
  if (client.ok()) {
    auto result = (*client)->Get(result_key);
    if (result.ok()) {
      stats.result.assign(result->begin(), result->end());
    }
  }
  return stats;
}

}  // namespace asbl
