// Mini-Redis: the external storage service OpenFaaS-style platforms move
// intermediate data through (§2, §8.3), and the global state tier of the
// Faasm model.
//
// A real in-memory KV server over host loopback TCP with a length-prefixed
// binary protocol (RESP-lite): every transfer through it pays genuine
// serialize + syscall + kernel-TCP + copy costs, which is exactly the
// "third-party forwarding" overhead the paper attributes to OpenFaaS.

#ifndef SRC_BASELINES_KVSTORE_H_
#define SRC_BASELINES_KVSTORE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <span>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace asbl {

class KvServer {
 public:
  KvServer() = default;
  ~KvServer();

  // Binds 127.0.0.1:<port> (0 picks a free port; see port()).
  asbase::Status Start(uint16_t port = 0);
  void Stop();
  uint16_t port() const { return port_; }

  size_t keys() const;
  uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  mutable std::mutex mutex_;
  // Wakes WAITGET ops when a Set lands (or the server stops).
  std::condition_variable cv_;
  std::map<std::string, std::vector<uint8_t>> table_;
  std::atomic<uint64_t> ops_{0};

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

// One TCP connection to a KvServer. Not thread-safe; use one per thread.
class KvClient {
 public:
  static asbase::Result<std::unique_ptr<KvClient>> Connect(uint16_t port);
  ~KvClient();

  asbase::Status Set(const std::string& key, std::span<const uint8_t> value);
  asbase::Result<std::vector<uint8_t>> Get(const std::string& key);
  asbase::Status Del(const std::string& key);
  // Atomic get-and-delete (single-consumer transfer take).
  asbase::Result<std::vector<uint8_t>> Take(const std::string& key);
  // Blocking Get: the *server* parks this connection on a condition variable
  // until the key appears (consumer waiting on a producer) or the timeout
  // passes — one round trip, no client-side polling.
  asbase::Result<std::vector<uint8_t>> WaitGet(
      const std::string& key,
      std::chrono::nanoseconds timeout = std::chrono::seconds(10));

 private:
  explicit KvClient(int fd) : fd_(fd) {}
  asbase::Result<std::vector<uint8_t>> Call(uint8_t op, const std::string& key,
                                            std::span<const uint8_t> value);
  int fd_;
};

}  // namespace asbl

#endif  // SRC_BASELINES_KVSTORE_H_
