#include "src/baselines/sim_profiles.h"

#include <cstring>
#include <vector>

#include "src/common/clock.h"
#include "src/common/rng.h"

namespace asbl {
namespace {

using asbase::SimCostModel;

// Guest memory allocation + touch (one write per page): the real part of VM
// memory setup.
void TouchGuestMemory(size_t bytes) {
  std::vector<uint8_t> memory(bytes);
  for (size_t offset = 0; offset < bytes; offset += 4096) {
    memory[offset] = 1;
  }
}

// "Load a kernel image": generate-once static image, then copy + checksum it
// the way a loader streams and verifies a file.
void LoadImage(size_t bytes) {
  static const std::vector<uint8_t>* kImage = [] {
    auto* image = new std::vector<uint8_t>(8u << 20);
    asbase::Rng rng(42);
    for (auto& byte : *image) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    return image;
  }();
  const size_t n = std::min(bytes, kImage->size());
  std::vector<uint8_t> copy(n);
  std::memcpy(copy.data(), kImage->data(), n);
  uint64_t checksum = 0;
  for (size_t i = 0; i < n; i += 64) {
    checksum += copy[i];
  }
  volatile uint64_t sink = checksum;
  (void)sink;
}

// Build a page-table-like radix index over the guest address range.
void BuildMappings(size_t entries) {
  std::vector<uint32_t> table(entries);
  for (size_t i = 0; i < entries; ++i) {
    table[i] = static_cast<uint32_t>(i * 2654435761u);
  }
  volatile uint32_t sink = table[entries / 2];
  (void)sink;
}

}  // namespace

int64_t SimulateBoot(const BootProfile& profile) {
  const auto& model = SimCostModel::Global();
  const int64_t start = asbase::MonoNanos();
  for (const auto& stage : profile.stages) {
    if (stage.work) {
      stage.work();
    }
    asbase::SpinFor(model.Scaled(stage.model_nanos));
  }
  return asbase::MonoNanos() - start;
}

BootProfile FirecrackerMicroVmProfile() {
  const auto& model = SimCostModel::Global();
  BootProfile profile;
  profile.name = "firecracker";
  profile.guest_kernel = true;
  profile.stages = {
      {"vmm+device-model", model.firecracker_vmm_init_nanos,
       [] { BuildMappings(64 * 1024); }},
      {"guest-memory", 0, [] { TouchGuestMemory(32u << 20); }},
      {"kernel-image", 0, [] { LoadImage(8u << 20); }},
      {"guest-kernel-boot", model.firecracker_guest_boot_nanos, {}},
  };
  return profile;
}

BootProfile KataContainerProfile() {
  BootProfile profile = FirecrackerMicroVmProfile();
  const auto& model = SimCostModel::Global();
  profile.name = "kata";
  profile.stages.push_back(
      {"kata-agent+oci", model.kata_agent_nanos,
       [] { BuildMappings(16 * 1024); }});
  return profile;
}

BootProfile VirtinesProfile() {
  const auto& model = SimCostModel::Global();
  BootProfile profile;
  profile.name = "virtines";
  profile.guest_kernel = false;  // syscalls hit the host kernel directly
  profile.stages = {
      {"kvm-vcpu+ept", model.virtines_kvm_setup_nanos,
       [] { BuildMappings(8 * 1024); }},
      {"snapshot-restore", 0, [] { TouchGuestMemory(2u << 20); }},
  };
  return profile;
}

BootProfile UnikraftProfile() {
  const auto& model = SimCostModel::Global();
  BootProfile profile;
  profile.name = "unikraft";
  profile.guest_kernel = true;
  profile.stages = {
      {"vmm+device-model", model.firecracker_vmm_init_nanos,
       [] { BuildMappings(32 * 1024); }},
      {"unikernel-image", 0, [] { LoadImage(2u << 20); }},  // ~1.6MB image
      {"unikernel-boot", model.unikraft_boot_nanos, {}},
  };
  return profile;
}

BootProfile GvisorProfile() {
  const auto& model = SimCostModel::Global();
  BootProfile profile;
  profile.name = "gvisor";
  profile.guest_kernel = true;  // user-space kernel (sentry)
  profile.stages = {
      {"oci+namespaces", model.container_setup_nanos,
       [] { BuildMappings(8 * 1024); }},
      {"go-runtime+sentry", model.gvisor_sentry_boot_nanos,
       [] { TouchGuestMemory(16u << 20); }},
  };
  return profile;
}

BootProfile ContainerProfile() {
  const auto& model = SimCostModel::Global();
  BootProfile profile;
  profile.name = "container";
  profile.guest_kernel = false;
  profile.stages = {
      {"namespaces+cgroups+rootfs", model.container_setup_nanos,
       [] { TouchGuestMemory(4u << 20); }},
  };
  return profile;
}

BootProfile WasmerProcessProfile(size_t module_image_bytes) {
  BootProfile profile;
  profile.name = "wasmer";
  profile.guest_kernel = false;
  profile.stages = {
      // Process spawn + runtime init + module load/validate. The image load
      // and validation are real work over the module size.
      {"process-spawn", 4'000'000, [] { TouchGuestMemory(2u << 20); }},
      {"module-load+validate", 2'000'000,
       [module_image_bytes] { LoadImage(module_image_bytes * 8); }},
  };
  return profile;
}

BootProfile WasmerThreadProfile(size_t module_image_bytes) {
  BootProfile profile;
  profile.name = "wasmer-thread";
  profile.guest_kernel = false;
  profile.stages = {
      // Thread in a warm runtime: instantiate the module (memory + tables).
      {"module-instantiate", 500'000,
       [module_image_bytes] { LoadImage(module_image_bytes); }},
  };
  return profile;
}

}  // namespace asbl
