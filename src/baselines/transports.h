// The four communication primitives of Fig 3, as measurable code paths, plus
// the platform transports used by baseline runtimes (pipes, redis).
//
//   kFunctionCall    direct call between threads in one address space —
//                    the receiver walks the sender's buffer in place.
//   kSharedMemory    two processes (fork), a MAP_SHARED region, and a pipe
//                    byte for the doorbell — the mmap method of §2.3.
//   kInterProcessTcp kernel loopback TCP between two processes.
//   kInterVmTcp      the user-space stack between two "VMs" on the virtual
//                    switch, each packet paying the virtio/vmexit cost from
//                    SimCostModel (two MicroVMs cannot be booted here).
//   kPipeIpc         kernel pipe between processes (Faastlane-IPC mode).
//   kRedis           through the mini-redis server (OpenFaaS data passing).

#ifndef SRC_BASELINES_TRANSPORTS_H_
#define SRC_BASELINES_TRANSPORTS_H_

#include <cstdint>

#include "src/common/status.h"

namespace asbl {

enum class TransportKind {
  kFunctionCall,
  kSharedMemory,
  kInterProcessTcp,
  kInterVmTcp,
  kPipeIpc,
  kRedis,
};

const char* TransportKindName(TransportKind kind);

// Transfers `bytes` of initialized data from a sender to a receiver over the
// given primitive and returns the transfer latency in nanoseconds: from just
// before the sender hands the data off until the receiver has walked all of
// it (checksum), matching the §2.3 measurement methodology. On failure the
// Status explains which leg failed.
asbase::Result<int64_t> MeasureTransfer(TransportKind kind, size_t bytes);

}  // namespace asbl

#endif  // SRC_BASELINES_TRANSPORTS_H_
