// Incremental HTTP/1.x request parser for the epoll edge reactor.
//
// The reactor feeds whatever bytes `recv` produced into `RequestParser::
// Feed`, which carries head/body state across calls — the non-blocking
// replacement for the old ReadHead/ReadBody pair that blocked a dedicated
// thread per connection. One Feed may complete zero requests (partial
// message), one, or several (pipelined HTTP/1.1), in arrival order.
//
// Hardened against remote input by construction:
//   * `Content-Length` is validated as a plain decimal token and bounded by
//     `Limits::max_body_bytes` — the seed parser fed the raw header to
//     `std::stoull`, so "content-length: banana" threw an uncaught
//     exception in a server thread and killed the process.
//   * Header blocks are bounded by `Limits::max_header_bytes`.
//   * `Connection` is parsed as a case-insensitive token list, and HTTP/1.0
//     requests default to close — the seed compared the raw value against
//     "close", so "Connection: Close" leaked a dead keep-alive loop.

#ifndef SRC_HTTP_PARSER_H_
#define SRC_HTTP_PARSER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ashttp {

struct HttpRequest;

// Decimal-token Content-Length validation. Rejects (kInvalidArgument)
// anything but [0-9]+, values that overflow uint64, and (kResourceExhausted)
// values above `max_bytes`.
asbase::Result<size_t> ParseContentLength(std::string_view value,
                                          size_t max_bytes);

// True when the request's Connection semantics call for closing after the
// response: a "close" token in the (case-insensitive, comma-separated)
// `connection` header, or an HTTP/1.0 request without "keep-alive".
bool WantsClose(const HttpRequest& request);

// True if `header_value` contains `token` as a case-insensitive element of
// its comma-separated token list ("Keep-Alive, Upgrade" contains
// "keep-alive").
bool HasConnectionToken(std::string_view header_value, std::string_view token);

class RequestParser {
 public:
  struct Limits {
    size_t max_header_bytes = 64u << 10;
    size_t max_body_bytes = 8u << 20;
  };

  RequestParser() : RequestParser(Limits{}) {}
  explicit RequestParser(Limits limits) : limits_(limits) {}

  // Consumes `data`, appending every request it completes to `*out`.
  // On error the parser is poisoned (every later Feed returns the same
  // error) and the connection should answer `StatusForParseError` and
  // close. Error codes: kInvalidArgument = malformed request line, header,
  // or Content-Length; kResourceExhausted = header block or declared body
  // over the limits.
  asbase::Status Feed(std::string_view data, std::vector<HttpRequest>* out);

  // True between messages: no partial request buffered. Idle connections in
  // this state can be reaped without cutting a half-delivered request.
  bool idle() const { return state_ == State::kHead && buffer_.empty(); }

  // Maps a Feed error to the HTTP status to answer before closing:
  // 400 for malformed input, 431 for an oversized header block, 413 for an
  // oversized declared body.
  static int StatusForParseError(const asbase::Status& error);

 private:
  enum class State { kHead, kBody };

  // Tries to cut one complete head off buffer_; moves to kBody (or emits a
  // body-less request) when the blank line is present.
  asbase::Status ConsumeHead(std::vector<HttpRequest>* out);
  asbase::Status ConsumeBody(std::vector<HttpRequest>* out);

  Limits limits_;
  State state_ = State::kHead;
  std::string buffer_;  // unconsumed head bytes / short body remainder
  std::unique_ptr<HttpRequest> current_;  // head parsed, body incomplete
  size_t body_target_ = 0;
  asbase::Status poisoned_ = asbase::OkStatus();
};

}  // namespace ashttp

#endif  // SRC_HTTP_PARSER_H_
