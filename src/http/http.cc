#include "src/http/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace ashttp {
namespace {

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Reads until "\r\n\r\n"; returns {head, leftover-body-bytes-already-read}.
asbase::Result<std::pair<std::string, std::string>> ReadHead(
    ByteStream& stream) {
  std::string data;
  uint8_t buffer[2048];
  while (true) {
    size_t scan_from = data.size() >= 3 ? data.size() - 3 : 0;
    AS_ASSIGN_OR_RETURN(size_t n, stream.Read(buffer));
    if (n == 0) {
      return asbase::Unavailable("connection closed before headers complete");
    }
    data.append(reinterpret_cast<char*>(buffer), n);
    size_t end = data.find("\r\n\r\n", scan_from);
    if (end != std::string::npos) {
      return std::make_pair(data.substr(0, end),
                            data.substr(end + 4));
    }
    if (data.size() > 1 << 20) {
      return asbase::InvalidArgument("headers too large");
    }
  }
}

asbase::Status ParseHeaders(const std::string& head, size_t first_line_end,
                            std::map<std::string, std::string>* headers) {
  size_t pos = first_line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) {
      eol = head.size();
    }
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return asbase::InvalidArgument("malformed header line: " + line);
    }
    std::string key = ToLower(line.substr(0, colon));
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    (*headers)[key] = line.substr(value_start);
  }
  return asbase::OkStatus();
}

asbase::Status ReadBody(ByteStream& stream,
                        const std::map<std::string, std::string>& headers,
                        std::string leftover, std::string* body) {
  size_t content_length = 0;
  auto it = headers.find("content-length");
  if (it != headers.end()) {
    content_length = static_cast<size_t>(std::stoull(it->second));
  }
  *body = std::move(leftover);
  if (body->size() > content_length) {
    body->resize(content_length);  // next message's bytes are not our problem
  }
  uint8_t buffer[8192];
  while (body->size() < content_length) {
    AS_ASSIGN_OR_RETURN(size_t n, stream.Read(buffer));
    if (n == 0) {
      return asbase::Unavailable("connection closed mid-body");
    }
    body->append(reinterpret_cast<char*>(buffer),
                 std::min(n, content_length - body->size()));
  }
  return asbase::OkStatus();
}

}  // namespace

// --------------------------------------------------------------- streams

HostStream::~HostStream() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

asbase::Result<size_t> HostStream::Read(std::span<uint8_t> out) {
  ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
  if (n < 0) {
    return asbase::Unavailable("recv failed");
  }
  return static_cast<size_t>(n);
}

asbase::Status HostStream::Write(std::span<const uint8_t> data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      return asbase::Unavailable("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return asbase::OkStatus();
}

asbase::Result<size_t> AsnetStream::Read(std::span<uint8_t> out) {
  return connection_->Recv(out);
}

asbase::Status AsnetStream::Write(std::span<const uint8_t> data) {
  return asnet::SendAll(*connection_, data);
}

// --------------------------------------------------------------- messages

std::string Serialize(const HttpRequest& request) {
  std::string out = request.method + " " + request.target + " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [key, value] : request.headers) {
    out += key + ": " + value + "\r\n";
    if (ToLower(key) == "content-length") {
      has_length = true;
    }
  }
  if (!has_length && !request.body.empty()) {
    out += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string Serialize(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    response.reason + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

asbase::Result<HttpRequest> ReadRequest(ByteStream& stream) {
  AS_ASSIGN_OR_RETURN(auto head_pair, ReadHead(stream));
  auto& [head, leftover] = head_pair;
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpRequest request;
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return asbase::InvalidArgument("malformed request line");
  }
  request.method = request_line.substr(0, sp1);
  request.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (line_end != std::string::npos) {
    AS_RETURN_IF_ERROR(ParseHeaders(head, line_end, &request.headers));
  }
  AS_RETURN_IF_ERROR(
      ReadBody(stream, request.headers, std::move(leftover), &request.body));
  return request;
}

asbase::Result<HttpResponse> ReadResponse(ByteStream& stream) {
  AS_ASSIGN_OR_RETURN(auto head_pair, ReadHead(stream));
  auto& [head, leftover] = head_pair;
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpResponse response;
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    return asbase::InvalidArgument("malformed status line");
  }
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  response.reason =
      sp2 == std::string::npos ? "" : status_line.substr(sp2 + 1);
  if (line_end != std::string::npos) {
    AS_RETURN_IF_ERROR(ParseHeaders(head, line_end, &response.headers));
  }
  AS_RETURN_IF_ERROR(
      ReadBody(stream, response.headers, std::move(leftover), &response.body));
  return response;
}

// --------------------------------------------------------------- server

HttpServer::HttpServer(HttpHandler handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Stop(); }

asbase::Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return asbase::Internal("socket() failed");
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return asbase::Unavailable("bind failed on port " + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return asbase::Internal("listen failed");
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return asbase::OkStatus();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Wake the accept loop with shutdown() alone; close only after the loop
  // has exited. Closing first races the loop's read of listen_fd_, and a
  // concurrently opened fd could be assigned the same number and accepted
  // on by mistake.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load()) {
        continue;
      }
      break;
    }
    int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    std::lock_guard<std::mutex> lock(workers_mutex_);
    workers_.emplace_back([this, fd] {
      HostStream stream(fd);  // closes fd on destruction
      while (true) {
        auto request = ReadRequest(stream);
        if (!request.ok()) {
          break;  // closed or malformed; drop the connection
        }
        HttpResponse response = handler_(*request);
        std::string wire = Serialize(response);
        if (!stream
                 .Write(std::span<const uint8_t>(
                     reinterpret_cast<const uint8_t*>(wire.data()),
                     wire.size()))
                 .ok()) {
          break;
        }
        auto connection_header = request->headers.find("connection");
        if (connection_header != request->headers.end() &&
            connection_header->second == "close") {
          break;
        }
      }
    });
  }
}

// --------------------------------------------------------------- client

asbase::Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                                      const HttpRequest& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return asbase::Internal("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return asbase::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return asbase::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed");
  }
  int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  HostStream stream(fd);
  HttpRequest to_send = request;
  to_send.headers["connection"] = "close";
  std::string wire = Serialize(to_send);
  AS_RETURN_IF_ERROR(stream.Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size())));
  return ReadResponse(stream);
}

asbase::Result<HttpResponse> HttpCallOver(asnet::TcpConnection& connection,
                                          const HttpRequest& request) {
  AsnetStream stream(&connection);
  std::string wire = Serialize(request);
  AS_RETURN_IF_ERROR(stream.Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size())));
  return ReadResponse(stream);
}

}  // namespace ashttp
