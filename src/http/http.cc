#include "src/http/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"
#include "src/http/parser.h"

namespace ashttp {
namespace {

// Bodies on the blocking helper path (clients, netstack serving). The
// reactor path uses HttpServerOptions::max_body_bytes instead.
constexpr size_t kBlockingMaxBody = 64u << 20;

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Reads until "\r\n\r\n"; returns {head, leftover-body-bytes-already-read}.
asbase::Result<std::pair<std::string, std::string>> ReadHead(
    ByteStream& stream) {
  std::string data;
  uint8_t buffer[2048];
  while (true) {
    size_t scan_from = data.size() >= 3 ? data.size() - 3 : 0;
    AS_ASSIGN_OR_RETURN(size_t n, stream.Read(buffer));
    if (n == 0) {
      return asbase::Unavailable("connection closed before headers complete");
    }
    data.append(reinterpret_cast<char*>(buffer), n);
    size_t end = data.find("\r\n\r\n", scan_from);
    if (end != std::string::npos) {
      return std::make_pair(data.substr(0, end),
                            data.substr(end + 4));
    }
    if (data.size() > 1 << 20) {
      return asbase::InvalidArgument("headers too large");
    }
  }
}

asbase::Status ParseHeaders(const std::string& head, size_t first_line_end,
                            std::map<std::string, std::string>* headers) {
  size_t pos = first_line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) {
      eol = head.size();
    }
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return asbase::InvalidArgument("malformed header line: " + line);
    }
    std::string key = ToLower(line.substr(0, colon));
    size_t value_start = colon + 1;
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    (*headers)[key] = line.substr(value_start);
  }
  return asbase::OkStatus();
}

asbase::Status ReadBody(ByteStream& stream,
                        const std::map<std::string, std::string>& headers,
                        std::string leftover, std::string* body) {
  size_t content_length = 0;
  auto it = headers.find("content-length");
  if (it != headers.end()) {
    // The seed fed the raw header to std::stoull — a non-numeric or
    // overflowing value threw out of a server thread and took the whole
    // process down. Validate instead and bound what we will buffer.
    AS_ASSIGN_OR_RETURN(content_length,
                        ParseContentLength(it->second, kBlockingMaxBody));
  }
  *body = std::move(leftover);
  if (body->size() > content_length) {
    body->resize(content_length);  // next message's bytes are not our problem
  }
  uint8_t buffer[8192];
  while (body->size() < content_length) {
    AS_ASSIGN_OR_RETURN(size_t n, stream.Read(buffer));
    if (n == 0) {
      return asbase::Unavailable("connection closed mid-body");
    }
    body->append(reinterpret_cast<char*>(buffer),
                 std::min(n, content_length - body->size()));
  }
  return asbase::OkStatus();
}

}  // namespace

// --------------------------------------------------------------- streams

HostStream::~HostStream() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

asbase::Result<size_t> HostStream::Read(std::span<uint8_t> out) {
  ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
  if (n < 0) {
    return asbase::Unavailable("recv failed");
  }
  return static_cast<size_t>(n);
}

asbase::Status HostStream::Write(std::span<const uint8_t> data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      return asbase::Unavailable("send failed");
    }
    sent += static_cast<size_t>(n);
  }
  return asbase::OkStatus();
}

asbase::Result<size_t> AsnetStream::Read(std::span<uint8_t> out) {
  return connection_->Recv(out);
}

asbase::Status AsnetStream::Write(std::span<const uint8_t> data) {
  return asnet::SendAll(*connection_, data);
}

// --------------------------------------------------------------- messages

std::string Serialize(const HttpRequest& request) {
  const std::string version =
      request.version.empty() ? "HTTP/1.1" : request.version;
  std::string out =
      request.method + " " + request.target + " " + version + "\r\n";
  bool has_length = false;
  for (const auto& [key, value] : request.headers) {
    out += key + ": " + value + "\r\n";
    if (ToLower(key) == "content-length") {
      has_length = true;
    }
  }
  if (!has_length && !request.body.empty()) {
    out += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string Serialize(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    response.reason + "\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

asbase::Result<HttpRequest> ReadRequest(ByteStream& stream) {
  // Blocking shim over the reactor's incremental parser: feed until the
  // first complete request. Bytes past it (a pipelined next request) are
  // discarded with the parser — the blocking path is one-message-at-a-time,
  // exactly like the seed's ReadHead/ReadBody pair.
  RequestParser::Limits limits;
  limits.max_body_bytes = kBlockingMaxBody;
  limits.max_header_bytes = 1u << 20;
  RequestParser parser(limits);
  std::vector<HttpRequest> completed;
  uint8_t buffer[8192];
  while (true) {
    AS_ASSIGN_OR_RETURN(size_t n, stream.Read(buffer));
    if (n == 0) {
      return parser.idle()
                 ? asbase::Unavailable(
                       "connection closed before headers complete")
                 : asbase::Unavailable("connection closed mid-request");
    }
    AS_RETURN_IF_ERROR(parser.Feed(
        std::string_view(reinterpret_cast<char*>(buffer), n), &completed));
    if (!completed.empty()) {
      return std::move(completed.front());
    }
  }
}

asbase::Result<HttpResponse> ReadResponse(ByteStream& stream) {
  AS_ASSIGN_OR_RETURN(auto head_pair, ReadHead(stream));
  auto& [head, leftover] = head_pair;
  const size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  HttpResponse response;
  // "HTTP/1.1 200 OK"
  const size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    return asbase::InvalidArgument("malformed status line");
  }
  response.status = std::atoi(status_line.c_str() + sp1 + 1);
  const size_t sp2 = status_line.find(' ', sp1 + 1);
  response.reason =
      sp2 == std::string::npos ? "" : status_line.substr(sp2 + 1);
  if (line_end != std::string::npos) {
    AS_RETURN_IF_ERROR(ParseHeaders(head, line_end, &response.headers));
  }
  AS_RETURN_IF_ERROR(
      ReadBody(stream, response.headers, std::move(leftover), &response.body));
  return response;
}

// --------------------------------------------------------------- client

asbase::Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                                      const HttpRequest& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return asbase::Internal("socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return asbase::InvalidArgument("bad host address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return asbase::Unavailable("connect to " + host + ":" +
                               std::to_string(port) + " failed");
  }
  int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  HostStream stream(fd);
  HttpRequest to_send = request;
  to_send.headers["connection"] = "close";
  std::string wire = Serialize(to_send);
  AS_RETURN_IF_ERROR(stream.Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size())));
  return ReadResponse(stream);
}

asbase::Result<HttpResponse> HttpCallOver(asnet::TcpConnection& connection,
                                          const HttpRequest& request) {
  AsnetStream stream(&connection);
  std::string wire = Serialize(request);
  AS_RETURN_IF_ERROR(stream.Write(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(wire.data()), wire.size())));
  return ReadResponse(stream);
}

}  // namespace ashttp
