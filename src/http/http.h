// Minimal HTTP/1.1 for the as-visor watchdog and gateway (§3.3) and the
// `http-server` synthetic benchmark.
//
// The message layer is transport-agnostic via `ByteStream`, so the same
// parser serves (a) host TCP sockets — the watchdog listens on the host — and
// (b) asnet::TcpConnection — the LibOS `http-server` workload answers through
// the user-space stack, exactly like Figure 5's as-std HTTP client.
//
// Supported subset: request line + headers + Content-Length bodies,
// case-insensitive Connection token lists (HTTP/1.0 defaults to close),
// status lines on responses. No chunked encoding.
//
// The server is an epoll reactor (src/http/server.cc): non-blocking
// accept + per-connection incremental parsing (src/http/parser.h) with
// HTTP/1.1 keep-alive and pipelining, buffered non-blocking writes, a
// connection cap with idle reaping, and a bounded worker pool for handler
// execution — no thread-per-connection anywhere. The blocking
// ReadRequest/ReadResponse helpers remain for clients and for serving over
// the user-space netstack.

#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/netstack/stack.h"

namespace ashttp {

// Transport the HTTP layer reads/writes.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual asbase::Result<size_t> Read(std::span<uint8_t> out) = 0;
  virtual asbase::Status Write(std::span<const uint8_t> data) = 0;
};

// Host-kernel TCP socket stream.
class HostStream : public ByteStream {
 public:
  explicit HostStream(int fd) : fd_(fd) {}
  ~HostStream() override;
  asbase::Result<size_t> Read(std::span<uint8_t> out) override;
  asbase::Status Write(std::span<const uint8_t> data) override;
  int fd() const { return fd_; }

 private:
  int fd_;
};

// Stream over a user-space netstack connection.
class AsnetStream : public ByteStream {
 public:
  explicit AsnetStream(asnet::TcpConnection* connection)
      : connection_(connection) {}
  asbase::Result<size_t> Read(std::span<uint8_t> out) override;
  asbase::Status Write(std::span<const uint8_t> data) override;

 private:
  asnet::TcpConnection* connection_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  std::map<std::string, std::string> headers;  // lowercase keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;
};

std::string Serialize(const HttpRequest& request);
std::string Serialize(const HttpResponse& response);

// Reads one message from the stream (blocking). Request parsing shares the
// reactor's hardened incremental parser; bodies on this path are bounded at
// 64 MiB.
asbase::Result<HttpRequest> ReadRequest(ByteStream& stream);
asbase::Result<HttpResponse> ReadResponse(ByteStream& stream);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// Tuning for the edge reactor. The environment fallbacks let deployments
// (and benches) size the edge without code changes; explicit options win.
struct HttpServerOptions {
  // Number of epoll reactor threads. Each owns a disjoint set of
  // connections; the listener lives on reactor 0 and accepted connections
  // are dealt round-robin. [env ALLOY_EDGE_REACTORS]
  size_t reactors = 1;
  // Handler worker threads. Parsed requests execute here, so a slow
  // invocation occupies a worker, never a reactor. 0 = max(4, hardware
  // concurrency). [env ALLOY_EDGE_WORKERS]
  size_t workers = 0;
  // Concurrent connection cap. Accepts past the cap answer 503 and close.
  // [env ALLOY_EDGE_MAX_CONNS]
  size_t max_connections = 4096;
  // Connections idle (no partial request, nothing in flight) longer than
  // this are reaped. 0 disables. [env ALLOY_EDGE_IDLE_TIMEOUT_MS]
  int64_t idle_timeout_ms = 60000;
  // Per-request parse limits (431/413 + close past them).
  // [env ALLOY_EDGE_MAX_BODY_BYTES for the body bound]
  size_t max_header_bytes = 64u << 10;
  size_t max_body_bytes = 8u << 20;
  // Per-connection backpressure: stop reading while this many parsed
  // requests await dispatch, or while more than max_buffered_out response
  // bytes await the socket.
  size_t max_pipeline_depth = 32;
  size_t max_buffered_out = 1u << 20;

  // Defaults with any ALLOY_EDGE_* environment overrides applied.
  static HttpServerOptions FromEnv();
};

namespace internal {
class EdgeReactor;      // src/http/server.cc
struct EdgeConnection;  // src/http/server.cc
}

// Epoll keep-alive HTTP server on a host TCP port (127.0.0.1).
class HttpServer {
 public:
  // port 0 picks a free port; see port() after Start().
  // The single-argument form applies HttpServerOptions::FromEnv().
  explicit HttpServer(HttpHandler handler);
  HttpServer(HttpHandler handler, HttpServerOptions options);
  ~HttpServer();

  asbase::Status Start(uint16_t port = 0);
  void Stop();
  uint16_t port() const { return port_; }

  // Live accepted connections (tests / introspection).
  size_t active_connections() const;

 private:
  friend class internal::EdgeReactor;
  friend struct internal::EdgeConnection;

  HttpHandler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> accept_cursor_{0};  // round-robin reactor placement
  // Responses owed to clients: dispatched handlers whose completion hasn't
  // been processed yet, plus connections holding unflushed response bytes.
  // Stop() settles this to zero (bounded by a 5s cap) before tearing the
  // reactors down, so drain-time 503s actually reach their clients.
  std::atomic<int64_t> settle_debt_{0};
  std::vector<std::unique_ptr<internal::EdgeReactor>> reactors_;
  std::unique_ptr<asbase::ThreadPool> workers_;
};

// One-shot client against a host TCP server.
asbase::Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                                      const HttpRequest& request);

// One-shot client over an established asnet connection.
asbase::Result<HttpResponse> HttpCallOver(asnet::TcpConnection& connection,
                                          const HttpRequest& request);

}  // namespace ashttp

#endif  // SRC_HTTP_HTTP_H_
