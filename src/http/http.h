// Minimal HTTP/1.1 for the as-visor watchdog and gateway (§3.3) and the
// `http-server` synthetic benchmark.
//
// The message layer is transport-agnostic via `ByteStream`, so the same
// parser serves (a) host TCP sockets — the watchdog listens on the host — and
// (b) asnet::TcpConnection — the LibOS `http-server` workload answers through
// the user-space stack, exactly like Figure 5's as-std HTTP client.
//
// Supported subset: request line + headers + Content-Length bodies,
// Connection: close semantics, status lines on responses. No chunked
// encoding, no pipelining.

#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/netstack/stack.h"

namespace ashttp {

// Transport the HTTP layer reads/writes.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  virtual asbase::Result<size_t> Read(std::span<uint8_t> out) = 0;
  virtual asbase::Status Write(std::span<const uint8_t> data) = 0;
};

// Host-kernel TCP socket stream.
class HostStream : public ByteStream {
 public:
  explicit HostStream(int fd) : fd_(fd) {}
  ~HostStream() override;
  asbase::Result<size_t> Read(std::span<uint8_t> out) override;
  asbase::Status Write(std::span<const uint8_t> data) override;
  int fd() const { return fd_; }

 private:
  int fd_;
};

// Stream over a user-space netstack connection.
class AsnetStream : public ByteStream {
 public:
  explicit AsnetStream(asnet::TcpConnection* connection)
      : connection_(connection) {}
  asbase::Result<size_t> Read(std::span<uint8_t> out) override;
  asbase::Status Write(std::span<const uint8_t> data) override;

 private:
  asnet::TcpConnection* connection_;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::map<std::string, std::string> headers;  // lowercase keys
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;
};

std::string Serialize(const HttpRequest& request);
std::string Serialize(const HttpResponse& response);

// Reads one message from the stream (blocking).
asbase::Result<HttpRequest> ReadRequest(ByteStream& stream);
asbase::Result<HttpResponse> ReadResponse(ByteStream& stream);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// Thread-per-connection server on a host TCP port (127.0.0.1).
class HttpServer {
 public:
  // port 0 picks a free port; see port() after Start().
  explicit HttpServer(HttpHandler handler);
  ~HttpServer();

  asbase::Status Start(uint16_t port = 0);
  void Stop();
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();

  HttpHandler handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

// One-shot client against a host TCP server.
asbase::Result<HttpResponse> HttpCall(const std::string& host, uint16_t port,
                                      const HttpRequest& request);

// One-shot client over an established asnet connection.
asbase::Result<HttpResponse> HttpCallOver(asnet::TcpConnection& connection,
                                          const HttpRequest& request);

}  // namespace ashttp

#endif  // SRC_HTTP_HTTP_H_
