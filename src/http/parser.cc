#include "src/http/parser.h"

#include <algorithm>
#include <cctype>
#include <memory>

#include "src/http/http.h"

namespace ashttp {
namespace {

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

std::string LowerCopy(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = LowerChar(c);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses "METHOD SP target SP HTTP/x.y" plus the header lines into
// `*request`. `head` excludes the terminating blank line.
asbase::Status ParseHead(std::string_view head, HttpRequest* request) {
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return asbase::InvalidArgument("malformed request line");
  }
  request->method = std::string(request_line.substr(0, sp1));
  request->target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request->version = std::string(Trim(request_line.substr(sp2 + 1)));
  if (request->method.empty() || request->target.empty()) {
    return asbase::InvalidArgument("malformed request line");
  }
  if (request->version.rfind("HTTP/", 0) != 0) {
    return asbase::InvalidArgument("malformed HTTP version token");
  }

  size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      eol = head.size();
    }
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return asbase::InvalidArgument("malformed header line: " +
                                     std::string(line));
    }
    request->headers[LowerCopy(line.substr(0, colon))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return asbase::OkStatus();
}

}  // namespace

asbase::Result<size_t> ParseContentLength(std::string_view value,
                                          size_t max_bytes) {
  value = Trim(value);
  if (value.empty() || value.size() > 19) {
    return asbase::InvalidArgument("malformed content-length");
  }
  uint64_t parsed = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      return asbase::InvalidArgument("malformed content-length");
    }
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  if (parsed > max_bytes) {
    return asbase::ResourceExhausted("body larger than limit");
  }
  return static_cast<size_t>(parsed);
}

bool HasConnectionToken(std::string_view header_value,
                        std::string_view token) {
  size_t pos = 0;
  while (pos <= header_value.size()) {
    size_t comma = header_value.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = header_value.size();
    }
    const std::string_view element =
        Trim(header_value.substr(pos, comma - pos));
    if (element.size() == token.size() &&
        std::equal(element.begin(), element.end(), token.begin(),
                   [](char a, char b) { return LowerChar(a) == b; })) {
      return true;
    }
    pos = comma + 1;
  }
  return false;
}

bool WantsClose(const HttpRequest& request) {
  const auto it = request.headers.find("connection");
  if (it != request.headers.end()) {
    if (HasConnectionToken(it->second, "close")) {
      return true;
    }
    if (HasConnectionToken(it->second, "keep-alive")) {
      return false;
    }
  }
  // No decisive token: HTTP/1.1 defaults to keep-alive, everything older
  // (or unrecognized) to close.
  return request.version != "HTTP/1.1";
}

asbase::Status RequestParser::Feed(std::string_view data,
                                   std::vector<HttpRequest>* out) {
  if (!poisoned_.ok()) {
    return poisoned_;
  }
  buffer_.append(data.data(), data.size());
  while (true) {
    const size_t completed_before = out->size();
    asbase::Status status = state_ == State::kHead ? ConsumeHead(out)
                                                   : ConsumeBody(out);
    if (!status.ok()) {
      poisoned_ = status;
      return status;
    }
    // Stop once a pass makes no progress: partial head or short body.
    if (out->size() == completed_before &&
        (state_ == State::kHead || buffer_.empty())) {
      return asbase::OkStatus();
    }
    if (buffer_.empty() && state_ == State::kHead) {
      return asbase::OkStatus();
    }
  }
}

asbase::Status RequestParser::ConsumeHead(std::vector<HttpRequest>* out) {
  // Ignore stray CRLF between pipelined requests (RFC 7230 §3.5).
  size_t skip = 0;
  while (skip + 1 < buffer_.size() && buffer_[skip] == '\r' &&
         buffer_[skip + 1] == '\n') {
    skip += 2;
  }
  if (skip > 0) {
    buffer_.erase(0, skip);
  }
  const size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    if (buffer_.size() > limits_.max_header_bytes) {
      return asbase::ResourceExhausted("header block larger than limit");
    }
    return asbase::OkStatus();
  }
  if (end > limits_.max_header_bytes) {
    return asbase::ResourceExhausted("header block larger than limit");
  }

  auto request = std::make_unique<HttpRequest>();
  request->headers.clear();
  AS_RETURN_IF_ERROR(
      ParseHead(std::string_view(buffer_).substr(0, end), request.get()));

  size_t content_length = 0;
  const auto it = request->headers.find("content-length");
  if (it != request->headers.end()) {
    AS_ASSIGN_OR_RETURN(content_length,
                        ParseContentLength(it->second,
                                           limits_.max_body_bytes));
  }
  buffer_.erase(0, end + 4);
  if (content_length == 0) {
    out->push_back(std::move(*request));
    return asbase::OkStatus();
  }
  current_ = std::move(request);
  body_target_ = content_length;
  state_ = State::kBody;
  return asbase::OkStatus();
}

asbase::Status RequestParser::ConsumeBody(std::vector<HttpRequest>* out) {
  const size_t need = body_target_ - current_->body.size();
  const size_t take = std::min(need, buffer_.size());
  current_->body.append(buffer_, 0, take);
  buffer_.erase(0, take);
  if (current_->body.size() == body_target_) {
    out->push_back(std::move(*current_));
    current_.reset();
    body_target_ = 0;
    state_ = State::kHead;
  }
  return asbase::OkStatus();
}

int RequestParser::StatusForParseError(const asbase::Status& error) {
  if (error.code() == asbase::ErrorCode::kResourceExhausted) {
    // Distinguish "head too big" from "declared body too big" by message.
    return error.ToString().find("header") != std::string::npos ? 431 : 413;
  }
  return 400;
}

}  // namespace ashttp
