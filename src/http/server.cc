// Epoll keep-alive reactor behind ashttp::HttpServer (ROADMAP "event-driven
// HTTP edge"). The seed served one blocking thread per connection and kept
// every finished worker joinable until Stop() — at edge scale the thread
// table, not the visor, fell over first. Here:
//
//   * N reactor threads (default 1) each run an epoll loop over a disjoint
//     set of non-blocking connections. The listener belongs to reactor 0;
//     accepted fds are dealt round-robin across reactors.
//   * Request bytes feed the incremental RequestParser as they arrive, so a
//     slow or pipelining client costs a connection object, never a thread.
//   * Parsed requests run the handler on a bounded shared worker pool; the
//     response is handed back to the owning reactor over a completion queue
//     + eventfd, keeping every socket under single-threaded ownership
//     (responses stay in request order per connection — pipelining-safe).
//   * Writes are buffered and flushed opportunistically; EAGAIN arms
//     EPOLLOUT and the reactor finishes the flush when the socket drains.
//   * A connection cap (503 + close past it) and idle reaping bound edge
//     memory; an eventfd per reactor gives Stop() a clean, race-free exit.

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/http/http.h"
#include "src/http/parser.h"
#include "src/obs/metrics.h"

namespace ashttp {
namespace internal {
namespace {

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') {
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

// Cached once; Counter/Gauge references are stable for the process.
struct EdgeMetrics {
  static EdgeMetrics& Get() {
    static EdgeMetrics metrics;
    return metrics;
  }
  asobs::Counter& accepts =
      asobs::Registry::Global().GetCounter("alloy_edge_accepts_total");
  asobs::Counter& overflows =
      asobs::Registry::Global().GetCounter("alloy_edge_overflows_total");
  asobs::Counter& reaped =
      asobs::Registry::Global().GetCounter("alloy_edge_reaped_total");
  asobs::Counter& parse_errors =
      asobs::Registry::Global().GetCounter("alloy_edge_parse_errors_total");
  asobs::Counter& requests =
      asobs::Registry::Global().GetCounter("alloy_edge_requests_total");
  asobs::Gauge& connections =
      asobs::Registry::Global().GetGauge("alloy_edge_connections");
};

std::string ErrorResponseWire(int status, const std::string& reason,
                              const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.reason = reason;
  response.body = body;
  response.headers["connection"] = "close";
  return Serialize(response);
}

}  // namespace

// Owned by exactly one reactor; every field except `dead` is touched only
// on that reactor's thread. Workers get a shared_ptr plus a copy of the
// request, and come back through the completion queue.
struct EdgeConnection {
  explicit EdgeConnection(int fd_in, HttpServer* server_in,
                          RequestParser::Limits limits)
      : fd(fd_in), server(server_in), parser(limits) {}

  ~EdgeConnection() {
    if (fd >= 0) {
      ::close(fd);
    }
    if (flush_debt) {
      server->settle_debt_.fetch_sub(1, std::memory_order_relaxed);
    }
    EdgeMetrics::Get().connections.Add(-1);
    server->active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  int fd;
  HttpServer* server;
  RequestParser parser;
  std::deque<HttpRequest> pending;  // parsed, awaiting dispatch (in order)
  bool handler_inflight = false;
  // Parse failed while earlier pipelined requests were still queued; the
  // error response is emitted once those responses have gone out.
  std::optional<std::string> deferred_error;
  std::string out;
  size_t out_offset = 0;
  uint32_t epoll_events = 0;  // currently-armed interest set
  bool close_after_flush = false;
  bool read_closed = false;
  bool flush_debt = false;  // counted in server->settle_debt_
  int64_t last_activity = 0;
  std::atomic<bool> dead{false};
};

class EdgeReactor {
 public:
  EdgeReactor(HttpServer* server, size_t index)
      : server_(server), index_(index) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event);
    if (index_ == 0) {
      epoll_event listen_event{};
      listen_event.events = EPOLLIN;
      listen_event.data.fd = server_->listen_fd_;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_->listen_fd_,
                  &listen_event);
      listen_registered_ = true;
    }
  }

  ~EdgeReactor() {
    connections_.clear();  // destructors close the fds
    if (epoll_fd_ >= 0) {
      ::close(epoll_fd_);
    }
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
    }
  }

  void StartThread() {
    thread_ = std::thread([this] { Loop(); });
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void Wake() {
    const uint64_t one = 1;
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;
  }

  // Called from reactor 0's accept path; hands a fresh connection to this
  // reactor's thread.
  void Adopt(std::shared_ptr<EdgeConnection> connection) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      adds_.push_back(std::move(connection));
    }
    Wake();
  }

  // Called from worker threads with the serialized response.
  void Complete(std::shared_ptr<EdgeConnection> connection, std::string wire,
                bool close_after) {
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      completions_.push_back(
          Completion{std::move(connection), std::move(wire), close_after});
    }
    Wake();
  }

 private:
  struct Completion {
    std::shared_ptr<EdgeConnection> connection;
    std::string wire;
    bool close_after;
  };

  void Loop() {
    const int64_t idle_nanos = server_->options_.idle_timeout_ms * 1000000;
    // The reap scan needs a periodic wake; a quarter of the timeout keeps
    // reap latency bounded without busy-spinning a 10k-connection table.
    const int tick_ms =
        idle_nanos > 0
            ? static_cast<int>(std::clamp<int64_t>(
                  server_->options_.idle_timeout_ms / 4, 10, 1000))
            : 1000;
    epoll_event events[128];
    while (server_->running_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd_, events, 128, tick_ms);
      if (!server_->running_.load(std::memory_order_acquire)) {
        break;
      }
      if (index_ == 0 && listen_registered_ &&
          !server_->accepting_.load(std::memory_order_acquire)) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, server_->listen_fd_, nullptr);
        listen_registered_ = false;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd_) {
          DrainWakeFd();
          continue;
        }
        if (index_ == 0 && fd == server_->listen_fd_) {
          AcceptReady();
          continue;
        }
        auto it = connections_.find(fd);
        if (it == connections_.end()) {
          continue;
        }
        std::shared_ptr<EdgeConnection> connection = it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
          Close(connection);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          ReadReady(connection);
        }
        if (!connection->dead.load(std::memory_order_relaxed) &&
            (events[i].events & EPOLLOUT) != 0) {
          Flush(connection);
        }
      }
      DrainInbox();
      if (idle_nanos > 0) {
        ReapIdle(idle_nanos);
      }
    }
  }

  void DrainWakeFd() {
    uint64_t value;
    while (::read(wake_fd_, &value, sizeof(value)) > 0) {
    }
  }

  void AcceptReady() {
    if (!server_->accepting_.load(std::memory_order_acquire)) {
      return;
    }
    while (true) {
      const int fd = ::accept4(server_->listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        return;  // EAGAIN, or EMFILE — either way, back to the loop
      }
      int enable = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
      const size_t active = server_->active_connections_.load(
          std::memory_order_relaxed);
      if (active >= server_->options_.max_connections) {
        // Over the cap: a best-effort 503 (the socket buffer of a fresh
        // connection always has room for it) and an immediate close.
        EdgeMetrics::Get().overflows.Add();
        const std::string wire = ErrorResponseWire(
            503, "Service Unavailable", "connection limit reached");
        ssize_t sent = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
        (void)sent;
        ::close(fd);
        continue;
      }
      EdgeMetrics::Get().accepts.Add();
      EdgeMetrics::Get().connections.Add(1);
      server_->active_connections_.fetch_add(1, std::memory_order_relaxed);
      RequestParser::Limits limits;
      limits.max_header_bytes = server_->options_.max_header_bytes;
      limits.max_body_bytes = server_->options_.max_body_bytes;
      auto connection =
          std::make_shared<EdgeConnection>(fd, server_, limits);
      connection->last_activity = asbase::MonoNanos();
      const size_t target =
          server_->accept_cursor_.fetch_add(1, std::memory_order_relaxed) %
          server_->reactors_.size();
      if (target == 0) {
        Register(std::move(connection));
      } else {
        server_->reactors_[target]->Adopt(std::move(connection));
      }
    }
  }

  void Register(std::shared_ptr<EdgeConnection> connection) {
    const int fd = connection->fd;
    connections_[fd] = connection;
    connection->epoll_events = EPOLLIN;
    epoll_event event{};
    event.events = connection->epoll_events;
    event.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
  }

  void DrainInbox() {
    std::vector<std::shared_ptr<EdgeConnection>> adds;
    std::vector<Completion> completions;
    {
      std::lock_guard<std::mutex> lock(inbox_mutex_);
      adds.swap(adds_);
      completions.swap(completions_);
    }
    for (auto& connection : adds) {
      Register(std::move(connection));
    }
    for (auto& completion : completions) {
      auto& connection = completion.connection;
      server_->settle_debt_.fetch_sub(1, std::memory_order_relaxed);
      if (connection->dead.load(std::memory_order_relaxed)) {
        continue;
      }
      EdgeMetrics::Get().requests.Add();
      connection->handler_inflight = false;
      connection->last_activity = asbase::MonoNanos();
      connection->out += completion.wire;
      NoteOutGrew(connection);
      if (completion.close_after) {
        // "Connection: close" means this is the final response; drop any
        // pipelined requests behind it.
        connection->close_after_flush = true;
        connection->pending.clear();
        connection->deferred_error.reset();
      }
      Advance(connection);
    }
  }

  // Central per-connection state pump: dispatch the next parsed request (or
  // the deferred parse-error response), flush buffered output, retune the
  // epoll interest set, and close once a final response has fully drained.
  void Advance(const std::shared_ptr<EdgeConnection>& connection) {
    if (!connection->handler_inflight && !connection->close_after_flush) {
      if (!connection->pending.empty()) {
        HttpRequest request = std::move(connection->pending.front());
        connection->pending.pop_front();
        connection->handler_inflight = true;
        Dispatch(connection, std::move(request));
      } else if (connection->deferred_error.has_value()) {
        connection->out += *connection->deferred_error;
        connection->deferred_error.reset();
        connection->close_after_flush = true;
        NoteOutGrew(connection);
      } else if (connection->read_closed) {
        connection->close_after_flush = true;  // nothing owed, peer is gone
      }
    }
    Flush(connection);
  }

  void NoteOutGrew(const std::shared_ptr<EdgeConnection>& connection) {
    if (!connection->flush_debt &&
        connection->out_offset < connection->out.size()) {
      connection->flush_debt = true;
      server_->settle_debt_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void Dispatch(std::shared_ptr<EdgeConnection> connection,
                HttpRequest request) {
    server_->settle_debt_.fetch_add(1, std::memory_order_relaxed);
    EdgeReactor* reactor = this;
    server_->workers_->Submit([reactor, connection = std::move(connection),
                               request = std::move(request)]() mutable {
      const bool close_after = WantsClose(request);
      HttpResponse response = connection->server->handler_(request);
      if (close_after) {
        response.headers["connection"] = "close";
      }
      reactor->Complete(std::move(connection), Serialize(response),
                        close_after);
    });
  }

  void ReadReady(const std::shared_ptr<EdgeConnection>& connection) {
    char buffer[65536];
    while (true) {
      const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        Close(connection);
        return;
      }
      if (n == 0) {
        // Peer finished sending. Advance() serves whatever is already
        // queued, then the flush path closes the connection.
        connection->read_closed = true;
        break;
      }
      connection->last_activity = asbase::MonoNanos();
      std::vector<HttpRequest> parsed;
      asbase::Status status = connection->parser.Feed(
          std::string_view(buffer, static_cast<size_t>(n)), &parsed);
      for (auto& request : parsed) {
        connection->pending.push_back(std::move(request));
      }
      if (!status.ok()) {
        EdgeMetrics::Get().parse_errors.Add();
        const int code = RequestParser::StatusForParseError(status);
        const char* reason = code == 431 ? "Request Header Fields Too Large"
                             : code == 413 ? "Payload Too Large"
                                           : "Bad Request";
        connection->deferred_error =
            ErrorResponseWire(code, reason, status.ToString());
        break;  // stop reading a poisoned stream
      }
      if (static_cast<size_t>(n) < sizeof(buffer)) {
        break;  // short read: the socket is drained (saves one EAGAIN)
      }
    }
    Advance(connection);
  }

  void Flush(const std::shared_ptr<EdgeConnection>& connection) {
    while (connection->out_offset < connection->out.size()) {
      const ssize_t n = ::send(
          connection->fd, connection->out.data() + connection->out_offset,
          connection->out.size() - connection->out_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          UpdateInterest(connection);
          return;
        }
        Close(connection);
        return;
      }
      connection->out_offset += static_cast<size_t>(n);
      connection->last_activity = asbase::MonoNanos();
    }
    connection->out.clear();
    connection->out_offset = 0;
    if (connection->flush_debt) {
      connection->flush_debt = false;
      server_->settle_debt_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (connection->close_after_flush) {
      Close(connection);
      return;
    }
    UpdateInterest(connection);
  }

  // Keeps the epoll interest set in sync with connection state: EPOLLOUT
  // while a flush is parked on a full socket, EPOLLIN unless reading is
  // paused for backpressure (too many parsed-but-unserved requests or too
  // many unsent response bytes) or the stream is poisoned/closed.
  void UpdateInterest(const std::shared_ptr<EdgeConnection>& connection) {
    uint32_t wanted = 0;
    const bool throttled =
        connection->pending.size() >= server_->options_.max_pipeline_depth ||
        connection->out.size() - connection->out_offset >
            server_->options_.max_buffered_out;
    if (!throttled && !connection->deferred_error.has_value() &&
        !connection->close_after_flush && !connection->read_closed) {
      wanted |= EPOLLIN;
    }
    if (connection->out_offset < connection->out.size()) {
      wanted |= EPOLLOUT;
    }
    if (wanted != connection->epoll_events) {
      connection->epoll_events = wanted;
      epoll_event event{};
      event.events = wanted;
      event.data.fd = connection->fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection->fd, &event);
    }
  }

  void Close(const std::shared_ptr<EdgeConnection>& connection) {
    if (connection->dead.exchange(true, std::memory_order_relaxed)) {
      return;
    }
    if (connection->flush_debt) {
      connection->flush_debt = false;
      server_->settle_debt_.fetch_sub(1, std::memory_order_relaxed);
    }
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd, nullptr);
    connections_.erase(connection->fd);
    // The fd itself closes in the destructor, once any in-flight worker
    // task has dropped its reference — that keeps the fd number from being
    // reused while a completion for it is still in an inbox.
  }

  void ReapIdle(int64_t idle_nanos) {
    const int64_t now = asbase::MonoNanos();
    std::vector<std::shared_ptr<EdgeConnection>> doomed;
    for (const auto& [fd, connection] : connections_) {
      if (connection->handler_inflight || !connection->pending.empty()) {
        continue;
      }
      if (!connection->parser.idle() ||
          connection->out_offset < connection->out.size()) {
        continue;  // mid-request or mid-response: not idle, just slow
      }
      if (now - connection->last_activity > idle_nanos) {
        doomed.push_back(connection);
      }
    }
    for (const auto& connection : doomed) {
      EdgeMetrics::Get().reaped.Add();
      Close(connection);
    }
  }

  HttpServer* server_;
  size_t index_;
  bool listen_registered_ = false;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  std::unordered_map<int, std::shared_ptr<EdgeConnection>> connections_;

  std::mutex inbox_mutex_;
  std::vector<std::shared_ptr<EdgeConnection>> adds_;
  std::vector<Completion> completions_;
};

}  // namespace internal

HttpServerOptions HttpServerOptions::FromEnv() {
  HttpServerOptions options;
  options.reactors =
      std::max<size_t>(1, internal::EnvSize("ALLOY_EDGE_REACTORS", 1));
  options.workers = internal::EnvSize("ALLOY_EDGE_WORKERS", 0);
  options.max_connections = std::max<size_t>(
      1, internal::EnvSize("ALLOY_EDGE_MAX_CONNS", options.max_connections));
  options.idle_timeout_ms = static_cast<int64_t>(internal::EnvSize(
      "ALLOY_EDGE_IDLE_TIMEOUT_MS",
      static_cast<size_t>(options.idle_timeout_ms)));
  options.max_body_bytes = internal::EnvSize("ALLOY_EDGE_MAX_BODY_BYTES",
                                             options.max_body_bytes);
  return options;
}

HttpServer::HttpServer(HttpHandler handler)
    : HttpServer(std::move(handler), HttpServerOptions::FromEnv()) {}

HttpServer::HttpServer(HttpHandler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {
  if (options_.reactors == 0) {
    options_.reactors = 1;
  }
  if (options_.workers == 0) {
    // The visor's queue-with-budget admission *blocks* the handler until a
    // slot frees, so every queued invocation occupies an edge worker for
    // its whole wait. The default bound must therefore comfortably exceed
    // max_inflight + queue depth of a typical visor, not just the CPU
    // count.
    options_.workers = std::max<size_t>(
        64, 4 * std::max<size_t>(1, std::thread::hardware_concurrency()));
  }
}

HttpServer::~HttpServer() { Stop(); }

asbase::Status HttpServer::Start(uint16_t port) {
  if (running_.load()) {
    return asbase::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return asbase::Internal("socket() failed");
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return asbase::Unavailable("bind failed on port " + std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  // A deep backlog so a connection storm is bounded by how fast the reactor
  // drains accept4, not by SYN-queue overflow (the kernel still clamps to
  // net.core.somaxconn).
  if (::listen(listen_fd_, 4096) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return asbase::Internal("listen failed");
  }
  workers_ = std::make_unique<asbase::ThreadPool>(options_.workers);
  settle_debt_.store(0, std::memory_order_relaxed);
  accepting_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  reactors_.reserve(options_.reactors);
  for (size_t i = 0; i < options_.reactors; ++i) {
    reactors_.push_back(std::make_unique<internal::EdgeReactor>(this, i));
  }
  for (auto& reactor : reactors_) {
    reactor->StartThread();
  }
  return asbase::OkStatus();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return;
  }
  // Phase 1: stop taking new connections, but keep the reactors serving so
  // in-flight handlers (e.g. a visor unwinding its admission queue with
  // 503s during drain) still get their responses onto the wire.
  accepting_.store(false, std::memory_order_release);
  for (auto& reactor : reactors_) {
    reactor->Wake();
  }
  const int64_t settle_deadline = asbase::MonoNanos() + 5ll * 1000000000;
  while (asbase::MonoNanos() < settle_deadline) {
    workers_->Drain();
    if (settle_debt_.load(std::memory_order_relaxed) == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (settle_debt_.load(std::memory_order_relaxed) != 0) {
    AS_LOG(kWarn) << "edge stop: abandoning unflushed responses after 5s";
  }
  // Phase 2: tear down. Reactors exit, then any straggler handler tasks
  // (their completions go unread but the inboxes outlive them), then the
  // connection table (destructors close the fds).
  running_.store(false, std::memory_order_release);
  for (auto& reactor : reactors_) {
    reactor->Wake();
  }
  for (auto& reactor : reactors_) {
    reactor->Join();
  }
  workers_->Drain();
  reactors_.clear();
  workers_.reset();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

size_t HttpServer::active_connections() const {
  return active_connections_.load(std::memory_order_relaxed);
}

}  // namespace ashttp
