// MPK trampoline (§7.1, Figure 9).
//
// as-std must raise the thread's PKRU before executing system-partition code
// (as-libos / as-visor) and drop it again on return. The real implementation
// is an assembly stub that saves the context, switches to the system stack,
// writes PKRU and jumps; here the context save/stack discipline is provided
// by the C++ call itself and the PKRU transition goes through PkeyRuntime so
// all three backends behave identically.
//
// The same thread is shared between user functions and as-libos (the paper's
// locality argument vs Faastlane); the trampoline only flips permissions, it
// never migrates work to another thread.

#ifndef SRC_MPK_TRAMPOLINE_H_
#define SRC_MPK_TRAMPOLINE_H_

#include <atomic>
#include <cstdint>
#include <utility>

#include "src/mpk/pkey_runtime.h"

namespace asmpk {

class Trampoline {
 public:
  // `system_pkru` is the PKRU value system code runs under (system + user
  // keys enabled); `user_pkru` is the restricted value user code runs under.
  Trampoline(PkeyRuntime* runtime, uint32_t user_pkru, uint32_t system_pkru)
      : runtime_(runtime), user_pkru_(user_pkru), system_pkru_(system_pkru) {}

  // Run `fn` with system permissions; restores the caller's PKRU afterwards
  // even if `fn` throws.
  template <typename Fn>
  auto EnterSystem(Fn&& fn) -> decltype(fn()) {
    Guard guard(this);
    return std::forward<Fn>(fn)();
  }

  // Drop to user permissions for the duration of `fn` (function execution).
  template <typename Fn>
  auto EnterUser(Fn&& fn) -> decltype(fn()) {
    const uint32_t saved = runtime_->ReadPkru();
    runtime_->WritePkru(user_pkru_);
    struct Restore {
      PkeyRuntime* runtime;
      uint32_t saved;
      ~Restore() { runtime->WritePkru(saved); }
    } restore{runtime_, saved};
    return std::forward<Fn>(fn)();
  }

  uint32_t user_pkru() const { return user_pkru_; }
  uint32_t system_pkru() const { return system_pkru_; }
  void set_user_pkru(uint32_t pkru) { user_pkru_ = pkru; }

  uint64_t enter_count() const {
    return enters_.load(std::memory_order_relaxed);
  }

  PkeyRuntime* runtime() const { return runtime_; }

 private:
  class Guard {
   public:
    explicit Guard(Trampoline* trampoline)
        : trampoline_(trampoline),
          saved_(trampoline->runtime_->ReadPkru()) {
      trampoline_->runtime_->WritePkru(trampoline_->system_pkru_);
      trampoline_->enters_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Guard() { trampoline_->runtime_->WritePkru(saved_); }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Trampoline* trampoline_;
    uint32_t saved_;
  };

  PkeyRuntime* runtime_;
  uint32_t user_pkru_;
  uint32_t system_pkru_;
  std::atomic<uint64_t> enters_{0};
};

}  // namespace asmpk

#endif  // SRC_MPK_TRAMPOLINE_H_
