#include "src/mpk/pkey_runtime.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <vector>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace asmpk {
namespace {

// Per-thread software PKRU copy. Matches hardware semantics: PKRU is
// thread-context state.
thread_local uint32_t tls_pkru = 0;  // all keys allowed at thread start

#if defined(__x86_64__)
inline void HwWritePkru(uint32_t pkru) {
  // wrpkru requires ecx = edx = 0. Encoded directly so no -mpku is needed.
  asm volatile(".byte 0x0f,0x01,0xef\n" /* wrpkru */
               :
               : "a"(pkru), "c"(0), "d"(0)
               : "memory");
}
#endif

int SysPkeyAlloc() {
#if defined(SYS_pkey_alloc)
  return static_cast<int>(syscall(SYS_pkey_alloc, 0UL, 0UL));
#else
  return -1;
#endif
}

int SysPkeyFree(int pkey) {
#if defined(SYS_pkey_free)
  return static_cast<int>(syscall(SYS_pkey_free, pkey));
#else
  return -1;
#endif
}

int SysPkeyMprotect(void* addr, size_t len, int prot, int pkey) {
#if defined(SYS_pkey_mprotect)
  return static_cast<int>(syscall(SYS_pkey_mprotect, addr, len, prot, pkey));
#else
  return -1;
#endif
}

// Domain-switch accounting for /metrics. WritePkru is the hottest path in
// the repo (~25ns under kEmulated), so it records nothing extra: the
// collector below aggregates, at scrape time, the switch_count_ each
// runtime already keeps — live instances are walked, destroyed instances
// fold their totals into `retired` from the destructor.
struct MpkTelemetry {
  std::mutex mutex;
  std::vector<const PkeyRuntime*> live;
  std::array<uint64_t, 3> retired_switches{};
  std::array<uint64_t, 3> retired_nanos{};
};

MpkTelemetry& Telemetry() {
  static auto* telemetry = new MpkTelemetry();
  return *telemetry;
}

size_t BackendIndex(MpkBackend backend) {
  return static_cast<size_t>(backend);
}

void CollectMpkMetrics(asobs::MetricEmitter& emitter) {
  MpkTelemetry& telemetry = Telemetry();
  std::array<uint64_t, 3> switches;
  std::array<uint64_t, 3> nanos;
  {
    std::lock_guard<std::mutex> lock(telemetry.mutex);
    switches = telemetry.retired_switches;
    nanos = telemetry.retired_nanos;
    for (const PkeyRuntime* runtime : telemetry.live) {
      switches[BackendIndex(runtime->backend())] += runtime->switch_count();
      nanos[BackendIndex(runtime->backend())] += runtime->switch_nanos();
    }
  }
  for (MpkBackend backend : {MpkBackend::kHardware, MpkBackend::kMprotect,
                             MpkBackend::kEmulated}) {
    const asobs::Labels labels = {{"backend", MpkBackendName(backend)}};
    emitter.Emit("alloy_mpk_domain_switches_total",
                 asobs::MetricType::kCounter, labels,
                 switches[BackendIndex(backend)]);
    emitter.Emit("alloy_mpk_domain_switch_nanos_total",
                 asobs::MetricType::kCounter, labels,
                 nanos[BackendIndex(backend)]);
  }
}

void RegisterTelemetry(const PkeyRuntime* runtime) {
  static std::once_flag collector_once;
  std::call_once(collector_once, [] {
    asobs::Registry::Global().RegisterCollector(CollectMpkMetrics);
  });
  MpkTelemetry& telemetry = Telemetry();
  std::lock_guard<std::mutex> lock(telemetry.mutex);
  telemetry.live.push_back(runtime);
}

void RetireTelemetry(const PkeyRuntime* runtime) {
  MpkTelemetry& telemetry = Telemetry();
  std::lock_guard<std::mutex> lock(telemetry.mutex);
  telemetry.live.erase(
      std::remove(telemetry.live.begin(), telemetry.live.end(), runtime),
      telemetry.live.end());
  telemetry.retired_switches[BackendIndex(runtime->backend())] +=
      runtime->switch_count();
  telemetry.retired_nanos[BackendIndex(runtime->backend())] +=
      runtime->switch_nanos();
}

}  // namespace

const char* MpkBackendName(MpkBackend backend) {
  switch (backend) {
    case MpkBackend::kHardware:
      return "hardware";
    case MpkBackend::kMprotect:
      return "mprotect";
    case MpkBackend::kEmulated:
      return "emulated";
  }
  return "?";
}

bool PkeyRuntime::HardwareAvailable() {
  static const bool kAvailable = [] {
    int key = SysPkeyAlloc();
    if (key < 0) {
      return false;
    }
    SysPkeyFree(key);
    return true;
  }();
  return kAvailable;
}

MpkBackend PkeyRuntime::DefaultBackend() {
  return HardwareAvailable() ? MpkBackend::kHardware : MpkBackend::kEmulated;
}

PkeyRuntime::PkeyRuntime(MpkBackend backend) : backend_(backend) {
  if (backend_ == MpkBackend::kHardware) {
    AS_CHECK(HardwareAvailable())
        << "hardware MPK backend requested but pkey_alloc fails";
  }
  RegisterTelemetry(this);
}

PkeyRuntime::~PkeyRuntime() {
  RetireTelemetry(this);
  for (auto& [key, hw_key] : hw_keys_) {
    SysPkeyFree(hw_key);
  }
}

asbase::Result<ProtKey> PkeyRuntime::AllocateKey() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ProtKey key = 1; key < 16; ++key) {
    if ((keys_in_use_ & (1u << key)) == 0) {
      if (backend_ == MpkBackend::kHardware) {
        int hw_key = SysPkeyAlloc();
        if (hw_key < 0) {
          return asbase::ResourceExhausted("kernel is out of pkeys");
        }
        hw_keys_[key] = hw_key;
      }
      keys_in_use_ |= static_cast<uint16_t>(1u << key);
      return key;
    }
  }
  return asbase::ResourceExhausted("all 15 protection keys are allocated");
}

asbase::Status PkeyRuntime::FreeKey(ProtKey key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (key <= 0 || key >= 16 || !(keys_in_use_ & (1u << key))) {
    return asbase::InvalidArgument("key " + std::to_string(key) +
                                   " is not allocated");
  }
  for (const auto& [addr, region] : regions_) {
    if (region.key == key) {
      return asbase::FailedPrecondition(
          "key " + std::to_string(key) + " still has bound regions");
    }
  }
  if (backend_ == MpkBackend::kHardware) {
    SysPkeyFree(hw_keys_[key]);
    hw_keys_.erase(key);
  }
  keys_in_use_ &= static_cast<uint16_t>(~(1u << key));
  return asbase::OkStatus();
}

asbase::Status PkeyRuntime::BindRegion(void* addr, size_t len, ProtKey key,
                                       int prot) {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  if (start % page != 0 || len == 0 || len % page != 0) {
    return asbase::InvalidArgument("region must be page-aligned");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (key < 0 || key >= 16 || !(keys_in_use_ & (1u << key))) {
    return asbase::InvalidArgument("key " + std::to_string(key) +
                                   " is not allocated");
  }
  // Reject overlap with any existing region except an exact match (rebind).
  auto it = regions_.upper_bound(start);
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->first == start) {
      if (prev->second.len != len) {
        return asbase::AlreadyExists("partial overlap with a bound region");
      }
    } else if (prev->first + prev->second.len > start) {
      return asbase::AlreadyExists("overlaps a bound region");
    }
  }
  if (it != regions_.end() && it->first < start + len) {
    return asbase::AlreadyExists("overlaps a bound region");
  }

  if (backend_ == MpkBackend::kHardware) {
    if (SysPkeyMprotect(addr, len, prot, hw_keys_[key]) != 0) {
      return asbase::Internal("pkey_mprotect failed");
    }
  }
  regions_[start] = Region{len, key, prot};
  return asbase::OkStatus();
}

asbase::Status PkeyRuntime::UnbindRegion(void* addr, size_t len) {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(start);
  if (it == regions_.end() || it->second.len != len) {
    return asbase::NotFound("no region bound at this address");
  }
  if (backend_ == MpkBackend::kHardware) {
    SysPkeyMprotect(addr, len, it->second.prot, 0);
  } else if (backend_ == MpkBackend::kMprotect) {
    mprotect(addr, len, it->second.prot);
  }
  regions_.erase(it);
  return asbase::OkStatus();
}

uint32_t PkeyRuntime::ReadPkru() const { return tls_pkru; }

void PkeyRuntime::WritePkru(uint32_t pkru) {
  tls_pkru = pkru;
  switch_count_.fetch_add(1, std::memory_order_relaxed);
  switch (backend_) {
    case MpkBackend::kHardware:
#if defined(__x86_64__)
      HwWritePkru(pkru);
#endif
      break;
    case MpkBackend::kMprotect:
      ApplyMprotect(pkru);
      break;
    case MpkBackend::kEmulated:
      // Charge the calibrated hardware switch cost so trampoline-heavy paths
      // (AS-IFI) measure realistically. ~25ns: cheaper than a clock read
      // pair would be accurate at, so issue serializing no-ops instead.
      asbase::SpinFor(
          asbase::SimCostModel::Global().Scaled(
              asbase::SimCostModel::Global().wrpkru_nanos));
      break;
  }
}

uint64_t PkeyRuntime::switch_nanos() const {
  if (backend_ == MpkBackend::kMprotect) {
    return measured_switch_nanos_.load(std::memory_order_relaxed);
  }
  return switch_count() *
         static_cast<uint64_t>(asbase::SimCostModel::Global().Scaled(
             asbase::SimCostModel::Global().wrpkru_nanos));
}

void PkeyRuntime::ApplyMprotect(uint32_t pkru) {
  const int64_t sweep_start = asbase::MonoNanos();
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [start, region] : regions_) {
    int prot;
    if (!KeyAllowed(pkru, region.key, /*write=*/false)) {
      prot = PROT_NONE;
    } else if (!KeyAllowed(pkru, region.key, /*write=*/true)) {
      prot = region.prot & ~PROT_WRITE;
    } else {
      prot = region.prot;
    }
    int rc = mprotect(reinterpret_cast<void*>(start), region.len, prot);
    AS_CHECK(rc == 0) << "mprotect enforcement failed";
  }
  measured_switch_nanos_.fetch_add(
      static_cast<uint64_t>(asbase::MonoNanos() - sweep_start),
      std::memory_order_relaxed);
}

asbase::Status PkeyRuntime::CheckAccess(const void* addr, size_t len,
                                        bool write) const {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.upper_bound(start);
  if (it == regions_.begin()) {
    return asbase::OkStatus();  // unbound memory carries the default key
  }
  --it;
  if (start >= it->first + it->second.len) {
    return asbase::OkStatus();
  }
  const Region& region = it->second;
  if (!KeyAllowed(tls_pkru, region.key, write)) {
    return asbase::PermissionDenied(
        "pkey " + std::to_string(region.key) + " denies " +
        (write ? "write" : "read") + " access under PKRU=" +
        std::to_string(tls_pkru));
  }
  return asbase::OkStatus();
}

ProtKey PkeyRuntime::KeyOf(const void* addr) const {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.upper_bound(start);
  if (it == regions_.begin()) {
    return 0;
  }
  --it;
  if (start >= it->first + it->second.len) {
    return 0;
  }
  return it->second.key;
}

}  // namespace asmpk
