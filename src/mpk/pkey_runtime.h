// Protection-key runtime: the isolation substrate for WFDs (§3.3, §7.1).
//
// Real AlloyStack binds Intel MPK keys to the system/user partitions with
// pkey_mprotect and flips the per-thread PKRU register in trampoline code.
// This machine may or may not expose MPK, so the same API is served by three
// backends (DESIGN.md §1):
//
//   kHardware  pkey_alloc/pkey_mprotect + RDPKRU/WRPKRU. Chosen automatically
//              when the CPU and kernel support it.
//   kMprotect  Genuine software enforcement: WritePkru() mprotect()s every
//              region whose key the new PKRU denies. Process-wide (mprotect
//              has no per-thread granularity), so it is used by the
//              single-threaded security tests.
//   kEmulated  Per-thread software PKRU + region bookkeeping. Access guards
//              (CheckAccess) give testable semantics; WritePkru charges the
//              calibrated WRPKRU cost so latency benches see the hardware
//              switch price.
//
// PKRU layout matches the SDM: 2 bits per key, bit 2k = AD (access disable),
// bit 2k+1 = WD (write disable). Key 0 is the default key and stays
// accessible.

#ifndef SRC_MPK_PKEY_RUNTIME_H_
#define SRC_MPK_PKEY_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/status.h"

namespace asmpk {

using ProtKey = int;  // 0..15

enum class MpkBackend {
  kHardware,
  kMprotect,
  kEmulated,
};

const char* MpkBackendName(MpkBackend backend);

class PkeyRuntime {
 public:
  // True when pkey_alloc succeeds on this kernel/CPU.
  static bool HardwareAvailable();

  // Picks kHardware when available, else kEmulated.
  static MpkBackend DefaultBackend();

  explicit PkeyRuntime(MpkBackend backend = DefaultBackend());
  ~PkeyRuntime();

  PkeyRuntime(const PkeyRuntime&) = delete;
  PkeyRuntime& operator=(const PkeyRuntime&) = delete;

  MpkBackend backend() const { return backend_; }

  // Allocates a key (1..15); kResourceExhausted when all are taken.
  asbase::Result<ProtKey> AllocateKey();
  asbase::Status FreeKey(ProtKey key);

  // Tags [addr, addr+len) (page-aligned) with `key`. prot is the PROT_*
  // bitmask the region has when its key is enabled.
  asbase::Status BindRegion(void* addr, size_t len, ProtKey key, int prot);
  asbase::Status UnbindRegion(void* addr, size_t len);

  // Per-thread PKRU value (software copy in all backends; also written to the
  // hardware register under kHardware and applied via mprotect under
  // kMprotect).
  uint32_t ReadPkru() const;
  void WritePkru(uint32_t pkru);

  // PKRU bit helpers.
  static uint32_t AllowKey(uint32_t pkru, ProtKey key) {
    return pkru & ~(3u << (2 * key));
  }
  static uint32_t DenyKey(uint32_t pkru, ProtKey key) {
    return pkru | (3u << (2 * key));
  }
  static uint32_t DenyWrite(uint32_t pkru, ProtKey key) {
    return (pkru & ~(3u << (2 * key))) | (2u << (2 * key));
  }
  static bool KeyAllowed(uint32_t pkru, ProtKey key, bool write) {
    uint32_t bits = (pkru >> (2 * key)) & 3u;
    if (bits & 1u) {
      return false;  // AD
    }
    if (write && (bits & 2u)) {
      return false;  // WD
    }
    return true;
  }

  // PKRU with every allocated key denied (the value user code runs under
  // before its own key is re-enabled).
  static constexpr uint32_t kDenyAll = 0xFFFFFFFCu;  // key 0 stays open

  // Software access check against the bound regions and the current thread's
  // PKRU. Under kEmulated this is the enforcement mechanism (as-std calls it
  // on the buffer paths); under the other backends it mirrors what the MMU
  // would decide.
  asbase::Status CheckAccess(const void* addr, size_t len, bool write) const;

  // Key a given address is bound to; 0 when unbound.
  ProtKey KeyOf(const void* addr) const;

  // Number of WritePkru() calls (trampoline switch count for benches).
  uint64_t switch_count() const {
    return switch_count_.load(std::memory_order_relaxed);
  }

  // Cumulative nanoseconds spent switching domains. Measured under
  // kMprotect (the mprotect sweep dominates there); modeled as
  // switch_count * the calibrated WRPKRU cost under kHardware/kEmulated —
  // per-switch clock reads would cost more than the switch itself (ERIM's
  // argument, and why the obs layer scrapes this instead of counting
  // per-switch). Exported as alloy_mpk_domain_switch_nanos_total.
  uint64_t switch_nanos() const;

 private:
  struct Region {
    size_t len;
    ProtKey key;
    int prot;
  };

  void ApplyMprotect(uint32_t pkru);

  const MpkBackend backend_;
  mutable std::mutex mutex_;
  std::map<uintptr_t, Region> regions_;  // keyed by start address
  uint16_t keys_in_use_ = 1;             // bit per key; key 0 reserved
  std::map<ProtKey, int> hw_keys_;       // our key -> kernel pkey
  std::atomic<uint64_t> switch_count_{0};
  std::atomic<uint64_t> measured_switch_nanos_{0};  // kMprotect only
};

}  // namespace asmpk

#endif  // SRC_MPK_PKEY_RUNTIME_H_
