// Minimal JSON document model + recursive-descent parser.
//
// The gateway triggers workflows from JSON configuration files (§7.1), and the
// watchdog's HTTP API exchanges JSON bodies. This is a strict parser for that
// traffic: UTF-8 in/out, \uXXXX escapes (BMP only), no comments, no trailing
// commas, 128-level depth limit.

#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace asbase {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps key order deterministic for golden tests.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}              // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(int v) : type_(Type::kInt), int_(v) {}               // NOLINT
  Json(int64_t v) : type_(Type::kInt), int_(v) {}           // NOLINT
  Json(uint64_t v) : type_(Type::kInt),                     // NOLINT
                     int_(static_cast<int64_t>(v)) {}
  Json(double v) : type_(Type::kDouble), double_(v) {}      // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {} // NOLINT
  Json(std::string s)                                       // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  Json(JsonArray a)                                         // NOLINT
      : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o)                                        // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kDouble;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    if (type_ == Type::kInt) {
      return int_;
    }
    if (type_ == Type::kDouble) {
      return static_cast<int64_t>(double_);
    }
    return fallback;
  }
  double as_double(double fallback = 0.0) const {
    if (type_ == Type::kDouble) {
      return double_;
    }
    if (type_ == Type::kInt) {
      return static_cast<double>(int_);
    }
    return fallback;
  }
  const std::string& as_string() const { return string_; }

  const JsonArray& array() const { return array_; }
  JsonArray& array() { return array_; }
  const JsonObject& object() const { return object_; }
  JsonObject& object() { return object_; }

  // Object lookup; returns a shared null sentinel when missing or not an
  // object, so chained lookups are safe: doc["a"]["b"].as_int(7).
  const Json& operator[](std::string_view key) const;
  // Array index; null sentinel when out of range.
  const Json& operator[](size_t index) const;

  bool contains(std::string_view key) const {
    return is_object() && object_.count(std::string(key)) > 0;
  }

  // Mutating accessors for building documents.
  Json& Set(std::string key, Json value);
  Json& Append(Json value);

  // Serialize. `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  static Result<Json> Parse(std::string_view text);

  bool operator==(const Json& other) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

}  // namespace asbase

#endif  // SRC_COMMON_JSON_H_
