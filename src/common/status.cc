#include "src/common/status.h"

namespace asbase {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status PermissionDenied(std::string message) {
  return Status(ErrorCode::kPermissionDenied, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status DataLoss(std::string message) {
  return Status(ErrorCode::kDataLoss, std::move(message));
}
Status Internal(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(ErrorCode::kDeadlineExceeded, std::move(message));
}

}  // namespace asbase
