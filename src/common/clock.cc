#include "src/common/clock.h"

#include <time.h>

namespace asbase {

int64_t MonoNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

int64_t WallMicros() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000 + ts.tv_nsec / 1000;
}

void SpinFor(int64_t nanos) {
  if (nanos <= 0) {
    return;
  }
  const int64_t deadline = MonoNanos() + nanos;
  while (MonoNanos() < deadline) {
    // Busy-wait: the modeled cost should occupy the CPU the way the real
    // work (boot, vmexit, WRPKRU serialization) would.
  }
}

SimCostModel& SimCostModel::Global() {
  static SimCostModel model;
  return model;
}

}  // namespace asbase
