#include "src/common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace asbase {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view message) {
  // Strip the directory prefix; paths in this repo are rooted at src/.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %10lld.%06llds %.*s:%d] %.*s\n", LevelTag(level),
               static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(message.size()), message.data());
}

LogLine::~LogLine() {
  LogMessage(level_, file_, line_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace asbase
