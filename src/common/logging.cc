#include "src/common/logging.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace asbase {
namespace {

std::mutex g_log_mutex;

// Default level, overridable by ALLOY_LOG_LEVEL before any explicit
// SetLogLevel call. Parsed once, on the first logging-API use.
int InitialLevel() {
  const char* env = std::getenv("ALLOY_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::isdigit(static_cast<unsigned char>(env[0]))) {
    int value = std::atoi(env);
    if (value >= static_cast<int>(LogLevel::kTrace) &&
        value <= static_cast<int>(LogLevel::kFatal)) {
      return value;
    }
    return static_cast<int>(LogLevel::kWarn);
  }
  std::string name;
  for (const char* c = env; *c != '\0'; ++c) {
    name += static_cast<char>(std::tolower(static_cast<unsigned char>(*c)));
  }
  if (name == "trace") return static_cast<int>(LogLevel::kTrace);
  if (name == "debug") return static_cast<int>(LogLevel::kDebug);
  if (name == "info") return static_cast<int>(LogLevel::kInfo);
  if (name == "warn" || name == "warning")
    return static_cast<int>(LogLevel::kWarn);
  if (name == "error") return static_cast<int>(LogLevel::kError);
  if (name == "fatal") return static_cast<int>(LogLevel::kFatal);
  return static_cast<int>(LogLevel::kWarn);
}

std::atomic<int>& Level() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

// Per-thread structured context rendered into every line's prefix. Plain
// thread_locals (not atomics): only this thread reads or writes them.
thread_local int tls_log_shard = -1;
thread_local std::string tls_log_workflow;

}  // namespace

ScopedLogContext::ScopedLogContext(int shard, std::string workflow)
    : previous_shard_(tls_log_shard),
      previous_workflow_(std::move(tls_log_workflow)) {
  tls_log_shard = shard;
  tls_log_workflow = std::move(workflow);
}

ScopedLogContext::~ScopedLogContext() {
  tls_log_shard = previous_shard_;
  tls_log_workflow = std::move(previous_workflow_);
}

uint64_t ThreadId() {
  static thread_local uint64_t tid = [] {
#if defined(SYS_gettid)
    long id = syscall(SYS_gettid);
    if (id > 0) {
      return static_cast<uint64_t>(id);
    }
#endif
    return static_cast<uint64_t>(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
  }();
  return tid;
}

void SetLogLevel(LogLevel level) {
  Level().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(Level().load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view message) {
  // Strip the directory prefix; paths in this repo are rooted at src/.
  size_t slash = file.rfind('/');
  if (slash != std::string_view::npos) {
    file.remove_prefix(slash + 1);
  }
  auto now = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count();
  // `shard=N wf=name ` from the thread's ScopedLogContext, if any.
  std::string context;
  if (tls_log_shard >= 0) {
    context += "shard=" + std::to_string(tls_log_shard) + " ";
  }
  if (!tls_log_workflow.empty()) {
    context += "wf=" + tls_log_workflow + " ";
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %10lld.%06llds t%llu %.*s:%d] %s%.*s\n",
               LevelTag(level), static_cast<long long>(now / 1000000),
               static_cast<long long>(now % 1000000),
               static_cast<unsigned long long>(ThreadId()),
               static_cast<int>(file.size()), file.data(), line,
               context.c_str(),
               static_cast<int>(message.size()), message.data());
}

LogLine::~LogLine() {
  LogMessage(level_, file_, line_, stream_.str());
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace asbase
