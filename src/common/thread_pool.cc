#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace asbase {

ThreadPool::ThreadPool(size_t num_threads) {
  AS_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.Close();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    ++inflight_;
  }
  bool pushed = tasks_.Push(std::move(task));
  AS_CHECK(pushed) << "Submit() after destruction";
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (--inflight_ == 0) {
      drain_cv_.notify_all();
    }
  }
}

}  // namespace asbase
