#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace asbase {

ThreadPool::ThreadPool(size_t num_threads) {
  EnsureAtLeast(num_threads);
}

ThreadPool::~ThreadPool() {
  tasks_.Close();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    ++inflight_;
  }
  bool pushed = tasks_.Push(std::move(task));
  AS_CHECK(pushed) << "Submit() after destruction";
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return inflight_ == 0; });
}

size_t ThreadPool::EnsureAtLeast(size_t num_threads) {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  size_t spawned = 0;
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
    ++spawned;
  }
  return spawned;
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size();
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (--inflight_ == 0) {
      drain_cv_.notify_all();
    }
  }
}

}  // namespace asbase
