#include "src/common/thread_pool.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "src/common/logging.h"

namespace asbase {

ThreadPool::ThreadPool(size_t num_threads) {
  EnsureAtLeast(num_threads);
}

ThreadPool::~ThreadPool() {
  tasks_.Close();
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    ++inflight_;
  }
  bool pushed = tasks_.Push(std::move(task));
  AS_CHECK(pushed) << "Submit() after destruction";
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drain_cv_.wait(lock, [&] { return inflight_ == 0; });
}

size_t ThreadPool::EnsureAtLeast(size_t num_threads) {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  size_t spawned = 0;
  while (workers_.size() < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
    if (!pinned_cpus_.empty()) {
      PinThread(workers_.back(), pinned_cpus_);
    }
    ++spawned;
  }
  return spawned;
}

bool ThreadPool::PinThread(std::thread& thread,
                           const std::vector<int>& cpus) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
    }
  }
  if (CPU_COUNT(&set) == 0) {
    return false;
  }
  return pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set) ==
         0;
#else
  (void)thread;
  (void)cpus;
  return false;
#endif
}

size_t ThreadPool::PinToCpus(const std::vector<int>& cpus) {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  pinned_cpus_ = cpus;
  size_t pinned = 0;
  for (auto& worker : workers_) {
    if (PinThread(worker, pinned_cpus_)) {
      ++pinned;
    }
  }
  if (!cpus.empty() && pinned < workers_.size()) {
    // Invalid cpuset for this machine (e.g. fewer cores than shards):
    // fall back to no affinity rather than half-pinning the pool.
    pinned_cpus_.clear();
  }
  return pinned;
}

std::vector<int> ThreadPool::pinned_cpus() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return pinned_cpus_;
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(workers_mutex_);
  return workers_.size();
}

void ThreadPool::WorkerLoop() {
  while (auto task = tasks_.Pop()) {
    (*task)();
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (--inflight_ == 0) {
      drain_cv_.notify_all();
    }
  }
}

}  // namespace asbase
