// Time sources.
//
// `MonoNanos()` is the raw monotonic clock every latency measurement uses.
// `SimCostModel` holds the calibrated constants used where this repository
// substitutes a model for hardware it does not have (MicroVM boot stages,
// hardware WRPKRU cost). Centralizing them here keeps every substitution
// auditable in one place; see DESIGN.md §1.

#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <cstdint>

namespace asbase {

// Monotonic nanoseconds since an arbitrary epoch.
int64_t MonoNanos();

// Wall-clock microseconds since the Unix epoch (the LibOS `time` module's
// gettimeofday() source).
int64_t WallMicros();

// Spin (not sleep) for the given duration. Used by latency models so the
// modeled cost consumes CPU like the real work would, instead of yielding.
void SpinFor(int64_t nanos);

// Measures the lifetime of a scope in nanoseconds.
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* out) : out_(out), start_(MonoNanos()) {}
  ~ScopedTimer() { *out_ += MonoNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* out_;
  int64_t start_;
};

// Calibrated constants for behaviour this machine cannot produce natively.
// All values are in nanoseconds unless noted, and are scaled by `scale`
// (default 1.0 = published numbers; benches may scale down to keep the suite
// fast — the scale used is printed in every bench header).
struct SimCostModel {
  double scale = 1.0;

  // One hardware WRPKRU instruction (ERIM, USENIX Security'19: 11-26 cycles
  // ~= 25ns at 2GHz when serialized). Paid by the emulated-MPK backend on
  // every trampoline switch so AS-IFI overhead is representable.
  int64_t wrpkru_nanos = 25;

  // MicroVM boot stages (Firecracker NSDI'20 ~125ms guest boot on their
  // hardware; Kata adds agent+runtime overhead; Virtines EuroSys'22 ~23us
  // hardware floor scaled up by their 22.8ms cold start including KVM).
  int64_t firecracker_vmm_init_nanos = 30'000'000;   // VMM + device model
  int64_t firecracker_guest_boot_nanos = 95'000'000; // guest kernel boot
  int64_t kata_agent_nanos = 75'000'000;             // kata-agent + OCI
  int64_t virtines_kvm_setup_nanos = 8'000'000;      // vCPU + EPT setup
  int64_t unikraft_boot_nanos = 3'000'000;           // unikernel boot proper
  int64_t gvisor_sentry_boot_nanos = 120'000'000;    // Go runtime + sentry
  int64_t container_setup_nanos = 60'000'000;        // namespaces + cgroups

  // Per-syscall interception penalty for the gVisor(ptrace) profile.
  int64_t ptrace_intercept_nanos = 12'000;

  // Extra per-packet cost of crossing a virtualized NIC (virtio + vmexit).
  int64_t inter_vm_packet_nanos = 9'000;

  // Plain process spawn for thread/process runtimes without a guest kernel.
  int64_t process_spawn_nanos = 3'500'000;

  // CPython interpreter bootstrap (Py_Initialize + importlib + site) on a
  // WASM runtime, beyond the stdlib-image read this repo performs for real.
  int64_t cpython_bootstrap_nanos = 200'000'000;

  // dlmopen() of one as-libos module: mapping the shared object, resolving
  // symbols, running initializers (§7.1 find_hostcall; the dominant share of
  // the paper's 88.1ms load-all cost). Charged per module load on top of
  // the real image-relocation work.
  int64_t dlmopen_per_module_nanos = 6'000'000;

  // virtio-blk toll on guest file reads (vs host page-cache reads).
  int64_t virtio_blk_nanos_per_kib = 500;

  // Nested-paging / hardware-virtualization compute overhead fraction
  // (Fig 16 discussion; [65]).
  double hw_virt_compute_fraction = 0.04;

  // Faasm shared-region page-fault cost per 4 KiB page (mremap + fault).
  int64_t faasm_page_fault_nanos = 1'800;

  // Faasm control plane: scheduling one workflow stage through the
  // distributed coordinator (§8.5: "as the function length increases, Faasm
  // spends more time on the control plane").
  int64_t faasm_stage_dispatch_nanos = 150'000'000;

  // Wasmtime (Cranelift) vs WAVM (LLVM) code-quality gap: extra compute
  // fraction charged to AlloyStack's AOT VM runs (§8.5: "Wasmtime is 30.0%
  // slower than WAVM").
  double wasmtime_cranelift_penalty = 0.30;

  int64_t Scaled(int64_t nanos) const {
    return static_cast<int64_t>(static_cast<double>(nanos) * scale);
  }

  // Process-wide instance used by baselines; tests may swap it.
  static SimCostModel& Global();
};

}  // namespace asbase

#endif  // SRC_COMMON_CLOCK_H_
