#include "src/common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace asbase {
namespace {

const Json& NullSentinel() {
  static const Json kNull;
  return kNull;
}

// Recursive-descent parser over a string_view with explicit position.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    AS_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Fail(std::string why) const {
    return InvalidArgument("json parse error at offset " +
                           std::to_string(pos_) + ": " + std::move(why));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(char c) {
    if (!AtEnd() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (AtEnd()) {
      return Fail("unexpected end of input");
    }
    switch (Peek()) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        AS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) {
          return Json(true);
        }
        return Fail("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          return Json(false);
        }
        return Fail("bad literal");
      case 'n':
        if (ConsumeWord("null")) {
          return Json(nullptr);
        }
        return Fail("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonObject object;
    SkipSpace();
    if (Consume('}')) {
      return Json(std::move(object));
    }
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '"') {
        return Fail("expected object key string");
      }
      AS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      SkipSpace();
      AS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      object[std::move(key)] = std::move(value);
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return Json(std::move(object));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<Json> ParseArray(int depth) {
    ++pos_;  // '['
    JsonArray array;
    SkipSpace();
    if (Consume(']')) {
      return Json(std::move(array));
    }
    while (true) {
      SkipSpace();
      AS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return Json(std::move(array));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("unterminated escape");
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          AS_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Fail("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad hex digit in \\u escape");
      }
    }
    return value;
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      return Fail("bad number");
    }
    if (!is_double) {
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Json(value);
      }
      // Fall through to double for out-of-range integers.
    }
    // std::from_chars for double is available in libstdc++ 11+.
    double value = 0;
    auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      return Fail("bad number");
    }
    return Json(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void EscapeInto(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (is_object()) {
    auto it = object_.find(std::string(key));
    if (it != object_.end()) {
      return it->second;
    }
  }
  return NullSentinel();
}

const Json& Json::operator[](size_t index) const {
  if (is_array() && index < array_.size()) {
    return array_[index];
  }
  return NullSentinel();
}

Json& Json::Set(std::string key, Json value) {
  if (type_ != Type::kObject) {
    *this = Json(JsonObject{});
  }
  object_[std::move(key)] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  if (type_ != Type::kArray) {
    *this = Json(JsonArray{});
  }
  array_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble: {
      char buf[40];
      if (std::isfinite(double_)) {
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Type::kString:
      EscapeInto(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : array_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        newline(depth + 1);
        item.DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        newline(depth + 1);
        EscapeInto(out, key);
        out.push_back(':');
        if (indent > 0) {
          out.push_back(' ');
        }
        value.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Parse();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    // Allow 1 == 1.0 comparisons between numeric types.
    if (is_number() && other.is_number()) {
      return as_double() == other.as_double();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kDouble:
      return double_ == other.double_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace asbase
