// Fixed-size worker pool. Used by the orchestrator for stage fan-out and by
// benches that drive open-loop load.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "src/common/queue.h"

namespace asbase {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Tasks run in FIFO order across the workers.
  void Submit(std::function<void()> task);

  // Block until every task submitted so far has finished executing.
  void Drain();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  size_t inflight_ = 0;  // queued + running
};

}  // namespace asbase

#endif  // SRC_COMMON_THREAD_POOL_H_
