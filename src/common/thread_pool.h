// Worker pool. Used by the orchestrator for stage fan-out (one resizable
// pool per WFD), the watchdog serving pipeline, and benches that drive
// open-loop load.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "src/common/queue.h"

namespace asbase {

class ThreadPool {
 public:
  // `num_threads` may be 0 for a pool grown later via EnsureAtLeast.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Tasks run in FIFO order across the workers.
  void Submit(std::function<void()> task);

  // Block until every task submitted so far has finished executing.
  void Drain();

  // Grows the pool to at least `num_threads` workers (never shrinks).
  // Returns how many workers were actually spawned — 0 when the pool is
  // already big enough, which is what makes reuse observable
  // (alloy_orch_thread_spawns_total stays flat on a warm WFD).
  size_t EnsureAtLeast(size_t num_threads);

  // Pins every current and future worker to `cpus` via
  // pthread_setaffinity_np (multi-visor sharding: a shard's stage workers
  // stay on the shard's core set). Best-effort: an empty or invalid set —
  // the no-affinity fallback when a shard's cpuset is too small for the
  // machine — leaves threads unpinned. Returns how many existing workers
  // were successfully pinned.
  size_t PinToCpus(const std::vector<int>& cpus);

  // The cpuset workers are pinned to (empty = unpinned).
  std::vector<int> pinned_cpus() const;

  size_t num_threads() const;

 private:
  void WorkerLoop();
  static bool PinThread(std::thread& thread, const std::vector<int>& cpus);

  BlockingQueue<std::function<void()>> tasks_;
  mutable std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
  std::vector<int> pinned_cpus_;  // guarded by workers_mutex_

  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  size_t inflight_ = 0;  // queued + running
};

}  // namespace asbase

#endif  // SRC_COMMON_THREAD_POOL_H_
