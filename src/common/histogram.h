// Latency histogram with exact percentiles (stores samples; the bench suite
// records at most a few hundred thousand samples per series, so exactness is
// cheaper than HDR bucketing and avoids quantization questions in the tables).

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace asbase {

class Json;

class Histogram {
 public:
  void Record(int64_t value_nanos);

  size_t count() const { return samples_.size(); }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  // q in [0, 1]; Percentile(0.99) is P99. Exact (nearest-rank) on the sorted
  // sample set.
  int64_t Percentile(double q) const;

  // "n=100 mean=1.23ms p50=1.1ms p99=4.2ms"
  std::string Summary() const;

  // {"count","min","mean","p50","p99","p999","max"} — the one stats shape
  // shared by BENCH_*.json emission and the /metrics summary quantiles.
  Json ToJson() const;

  void Clear() { samples_.clear(); sorted_ = true; }

  // Merge another histogram's samples into this one.
  void Merge(const Histogram& other);

 private:
  void EnsureSorted() const;

  std::vector<int64_t> samples_;
  mutable bool sorted_ = true;
};

// Pretty-prints a nanosecond quantity with an adaptive unit ("1.3ms").
std::string FormatNanos(int64_t nanos);

// Pretty-prints a byte quantity ("16MB", "4KB").
std::string FormatBytes(uint64_t bytes);

}  // namespace asbase

#endif  // SRC_COMMON_HISTOGRAM_H_
