// Error model shared by every AlloyStack library.
//
// The LibOS boundary (as-std -> as-libos) mirrors the paper's Rust `Result<T>`
// return values: every fallible call returns `Result<T>`, a value-or-`Status`
// sum type. `Status` carries a coarse `ErrorCode` (stable, switchable) and a
// human-readable message (diagnostic only, never matched on).

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace asbase {

// Stable error codes. Values intentionally mirror the coarse categories a
// LibOS syscall layer needs; they are not errno values.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // slot / path / fd / key does not exist
  kAlreadyExists,     // create collided with an existing entity
  kPermissionDenied,  // MPK / isolation policy rejected the access
  kResourceExhausted, // out of heap, fds, ports, disk clusters, ...
  kFailedPrecondition,// object in the wrong state for this call
  kOutOfRange,        // offset/length outside the object
  kUnimplemented,     // module compiled out or API not provided
  kUnavailable,       // transient: peer closed, would-block timeout, retry ok
  kDataLoss,          // corruption detected (bad checksum, bad FAT chain)
  kInternal,          // invariant violation inside the library
  kDeadlineExceeded,  // invocation ran past its configured deadline
};

std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on success (no allocation).
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "NOT_FOUND: no such slot 'Conference'"
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status PermissionDenied(std::string message);
Status ResourceExhausted(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Unavailable(std::string message);
Status DataLoss(std::string message);
Status Internal(std::string message);
Status DeadlineExceeded(std::string message);

// Value-or-Status. Minimal `std::expected` equivalent (the toolchain's
// libstdc++ predates C++23 `<expected>`).
template <typename T>
class Result {
 public:
  // Implicit from value and from Status so `return value;` / `return
  // NotFound(...)` both work, matching absl/Rust ergonomics.
  Result(T value) : rep_(std::move(value)) {}           // NOLINT
  Result(Status status) : rep_(std::move(status)) {     // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "cannot construct Result<T> from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk = Status::Ok();
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace asbase

// Propagate an error Status from an expression that yields Status.
#define AS_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::asbase::Status as_status_ = (expr);          \
    if (!as_status_.ok()) {                        \
      return as_status_;                           \
    }                                              \
  } while (0)

// Evaluate an expression yielding Result<T>; on success bind the value to
// `lhs`, on error propagate the Status.
#define AS_ASSIGN_OR_RETURN(lhs, expr)             \
  auto AS_CONCAT_(as_result_, __LINE__) = (expr);  \
  if (!AS_CONCAT_(as_result_, __LINE__).ok()) {    \
    return AS_CONCAT_(as_result_, __LINE__).status(); \
  }                                                \
  lhs = std::move(AS_CONCAT_(as_result_, __LINE__)).value()

#define AS_CONCAT_INNER_(a, b) a##b
#define AS_CONCAT_(a, b) AS_CONCAT_INNER_(a, b)

#endif  // SRC_COMMON_STATUS_H_
