// Leveled logging for the whole stack.
//
// Logging goes to stderr so benchmark/table output on stdout stays parseable.
// The level is process-global and defaults to kWarn so benches stay quiet;
// the `ALLOY_LOG_LEVEL` env var ("trace".."fatal" or 0..5, read on first
// use) overrides the default, and SetLogLevel overrides both.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace asbase {

// Kernel thread id of the calling thread (cached per thread). Logging tags
// every line with it; the obs trace layer uses it as the Chrome `tid`.
uint64_t ThreadId();

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kFatal = 5,
};

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line; called by the LOG macro, not directly.
void LogMessage(LogLevel level, std::string_view file, int line,
                std::string_view message);

// Thread-local structured log context: while one of these is alive, every
// log line from this thread carries a `shard=N wf=name` prefix, so
// interleaved shard logs (ALLOY_VISOR_SHARDS > 1) stay attributable. Nests:
// the destructor restores whatever context the constructor replaced. shard
// < 0 omits the shard field; an empty workflow omits the wf field.
class ScopedLogContext {
 public:
  ScopedLogContext(int shard, std::string workflow);
  ~ScopedLogContext();

  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  int previous_shard_;
  std::string previous_workflow_;
};

// Stream-collecting helper; logs (and aborts for kFatal) in the destructor.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace asbase

#define AS_LOG(level)                                                  \
  if (::asbase::LogLevel::level < ::asbase::GetLogLevel()) {           \
  } else                                                               \
    ::asbase::LogLine(::asbase::LogLevel::level, __FILE__, __LINE__)

// Check that aborts in all build modes (kernel-ish code should not limp on).
#define AS_CHECK(cond)                                        \
  if (cond) {                                                 \
  } else                                                      \
    ::asbase::LogLine(::asbase::LogLevel::kFatal, __FILE__,   \
                      __LINE__)                               \
        << "check failed: " #cond " "

#endif  // SRC_COMMON_LOGGING_H_
