// Blocking bounded MPMC queue used for inter-thread channels throughout the
// stack (virtual network links, orchestrator work distribution, gVisor-style
// syscall forwarding).

#ifndef SRC_COMMON_QUEUE_H_
#define SRC_COMMON_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace asbase {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}

  // Blocks while the queue is full (if bounded). Returns false if the queue
  // was closed before the item could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking; returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Waits at most `timeout`; nullopt on timeout, closed-and-drained, or a
  // Kick(). A pending kick is consumed by the first call that observes it.
  std::optional<T> PopWithTimeout(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&] {
      return closed_ || kicked_ || !items_.empty();
    });
    kicked_ = false;
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // Wakes a consumer blocked in PopWithTimeout without enqueuing an item:
  // the waiter returns nullopt early (the netstack poller uses this to
  // re-evaluate its timer deadline). Sticky — if no consumer is waiting, the
  // next PopWithTimeout call returns immediately instead.
  void Kick() {
    std::lock_guard<std::mutex> lock(mutex_);
    kicked_ = true;
    not_empty_.notify_all();
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  // After Close(), pushes fail and pops drain the remaining items then
  // return nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;  // 0 = unbounded
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  bool kicked_ = false;
};

}  // namespace asbase

#endif  // SRC_COMMON_QUEUE_H_
