#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/json.h"

namespace asbase {

void Histogram::Record(int64_t value_nanos) {
  samples_.push_back(value_nanos);
  sorted_ = false;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    auto* self = const_cast<Histogram*>(this);
    std::sort(self->samples_.begin(), self->samples_.end());
    self->sorted_ = true;
  }
}

int64_t Histogram::min() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.front();
}

int64_t Histogram::max() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0;
  for (int64_t s : samples_) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples_.size());
}

int64_t Histogram::Percentile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  if (rank > 0) {
    rank -= 1;
  }
  rank = std::min(rank, samples_.size() - 1);
  return samples_[rank];
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%s p50=%s p99=%s max=%s",
                count(), FormatNanos(static_cast<int64_t>(mean())).c_str(),
                FormatNanos(Percentile(0.5)).c_str(),
                FormatNanos(Percentile(0.99)).c_str(),
                FormatNanos(max()).c_str());
  return buf;
}

Json Histogram::ToJson() const {
  Json out;
  out.Set("count", static_cast<int64_t>(count()));
  out.Set("min", min());
  out.Set("mean", mean());
  out.Set("p50", Percentile(0.5));
  out.Set("p99", Percentile(0.99));
  out.Set("p999", Percentile(0.999));
  out.Set("max", max());
  return out;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

std::string FormatNanos(int64_t nanos) {
  char buf[64];
  double v = static_cast<double>(nanos);
  if (nanos < 1'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos));
  } else if (nanos < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", v / 1e3);
  } else if (nanos < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ULL * 1024) {
    std::snprintf(buf, sizeof(buf), "%.0fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else if (bytes < 1024ULL * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.0fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  return buf;
}

}  // namespace asbase
