// Deterministic pseudo-random number generation for workload generators and
// property tests. xoshiro256** seeded via splitmix64 — fast, reproducible,
// and independent of the standard library's unspecified distributions.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace asbase {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

  // Lowercase ASCII word of length in [min_len, max_len].
  std::string Word(int min_len, int max_len) {
    int len = static_cast<int>(Range(min_len, max_len));
    std::string word(static_cast<size_t>(len), 'a');
    for (auto& c : word) {
      c = static_cast<char>('a' + Below(26));
    }
    return word;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace asbase

#endif  // SRC_COMMON_RNG_H_
