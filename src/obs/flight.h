// asobs flight recorder: an always-on, fixed-size, lock-free ring of
// structured invocation records (DESIGN.md §11).
//
// The trace layer answers "where did THIS invocation's time go" but only for
// the handful of invocations still in a retention ring; `/metrics` answers
// "how fast on average". Neither can reconstruct a p99 spike that happened
// thirty seconds ago on one shard. The flight recorder fills that gap: every
// invocation (success, failure, timeout, admission rejection) deposits one
// fixed-size record — workflow, shard, outcome, and a nanosecond breakdown
// of queue wait → pool lease → module load → per-stage execution →
// net/AsBuffer transfer → pool reset — into a ring that a scraper
// (`GET /debug/flight`) or the SLO watchdog's black-box snapshot reads at
// any time without stopping writers.
//
// Hot-path contract: a writer claims a slot with one relaxed fetch_add and
// stamps each field with one relaxed atomic store. There are no locks, no
// allocation, and no string handling on the write path — workflow names are
// interned once at registration time and referenced by id. Readers use a
// per-slot seqlock (sequence odd = write in progress, changed = torn) so a
// scrape concurrent with a wrapping writer skips the slot instead of
// observing a mixed record; because every field is an atomic, the protocol
// is also exactly representable to TSan (no "benign race" suppressions).
//
// Compile-time kill switch: building with -DALLOY_DISABLE_FLIGHT turns
// Record() into an immediate return for overhead A/B measurements
// (`bench_serving --obs-overhead` measures the runtime on/off delta).

#ifndef SRC_OBS_FLIGHT_H_
#define SRC_OBS_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.h"

namespace asobs {

enum class FlightOutcome : uint32_t {
  kOk = 0,
  kError = 1,
  kTimeout = 2,
  kRejected = 3,  // admission control said 429; no WFD was ever leased
};

const char* FlightOutcomeName(FlightOutcome outcome);

// One invocation's breakdown, as handed to Record() and returned by
// Snapshot(). Timestamps are asbase::MonoNanos.
struct FlightRecord {
  static constexpr size_t kMaxStages = 6;

  std::string workflow;  // resolved from the interned id on read
  int32_t shard = -1;
  FlightOutcome outcome = FlightOutcome::kOk;
  bool warm_start = false;
  int64_t start_nanos = 0;  // receipt (after admission)
  int64_t end_nanos = 0;    // completion / rejection
  int64_t total_nanos = 0;  // end-to-end as reported to the caller

  // The phase breakdown. Phases the invocation never reached stay zero.
  int64_t queue_wait_nanos = 0;   // admission queue (or predicted wait, on
                                  // a rejection record)
  int64_t lease_nanos = 0;        // pool lease + (cold) WFD instantiation
  int64_t module_load_nanos = 0;  // on-demand module loads during the run
  int64_t exec_nanos = 0;         // orchestrator Run wall time
  int64_t net_nanos = 0;          // AsBuffer/netstack transfer phase time
  int64_t reset_nanos = 0;        // WFD reset + park (reclaim)

  // Per-stage execution wall time, first kMaxStages stages.
  uint32_t stages = 0;
  int64_t stage_nanos[kMaxStages] = {};

  asbase::Json ToJson() const;
};

class FlightRecorder {
 public:
  // capacity 0 disables the recorder entirely: Record() returns immediately
  // and Snapshot() is empty. Capacity is fixed for the recorder's lifetime.
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return capacity_ > 0; }
  size_t capacity() const { return capacity_; }

  // Interns a workflow name, returning the id Record() takes. Takes a mutex
  // — call at registration time and cache the id, never per invocation.
  // Idempotent: the same name always returns the same id.
  uint32_t InternWorkflow(const std::string& name);

  // Deposits one record. Lock-free: one relaxed fetch_add to claim a slot,
  // one relaxed store per field. If the claimed slot is still being written
  // by a lapped writer (ring wrapped a full turn mid-write) the record is
  // dropped and counted, never blocked on. Returns whether it was stored.
  bool Record(uint32_t workflow_id, const FlightRecord& record);

  // Copies out every consistent record, oldest first (by end_nanos).
  // `workflow` empty = all workflows; `since_nanos` > 0 keeps only records
  // with end_nanos > since_nanos (cursor-style incremental scraping).
  std::vector<FlightRecord> Snapshot(const std::string& workflow = "",
                                     int64_t since_nanos = 0) const;

  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  // Seqlock slot. seq even = stable, odd = write in progress. Every payload
  // field is an atomic accessed relaxed, so a racing reader observes values
  // (possibly from two different records — which the seq recheck detects)
  // rather than undefined behavior.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint32_t> workflow_id{0};
    std::atomic<int32_t> shard{-1};
    std::atomic<uint32_t> outcome{0};
    std::atomic<uint32_t> warm_start{0};
    std::atomic<int64_t> start_nanos{0};
    std::atomic<int64_t> end_nanos{0};
    std::atomic<int64_t> total_nanos{0};
    std::atomic<int64_t> queue_wait_nanos{0};
    std::atomic<int64_t> lease_nanos{0};
    std::atomic<int64_t> module_load_nanos{0};
    std::atomic<int64_t> exec_nanos{0};
    std::atomic<int64_t> net_nanos{0};
    std::atomic<int64_t> reset_nanos{0};
    std::atomic<uint32_t> stages{0};
    std::atomic<int64_t> stage_nanos[FlightRecord::kMaxStages];
  };

  std::string WorkflowName(uint32_t id) const;

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};

  // Interned workflow names; id = index + 1 (0 = unknown). Append-only,
  // read under the same mutex (Snapshot is not a hot path).
  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;
};

// {"records":[FlightRecord.ToJson()...]} — the `/debug/flight` body core.
asbase::Json FlightReportJson(const std::vector<FlightRecord>& records);

// p50/p95/p99 phase attribution over a record set — the `/debug/latency`
// body. Phases are made disjoint for attribution (module_load and net happen
// *inside* exec, so "exec" here is exec minus both), plus an "other" bucket
// for total time none of the stamps cover. `tail_owner` names the bucket
// with the largest share of time across the slowest 5% of invocations —
// which phase owns the tail.
asbase::Json LatencyAttributionJson(const std::vector<FlightRecord>& records);

}  // namespace asobs

#endif  // SRC_OBS_FLIGHT_H_
