#include "src/obs/rebalance.h"

#include "src/common/clock.h"

namespace asobs {

const char* RebalanceKindName(RebalanceKind kind) {
  switch (kind) {
    case RebalanceKind::kReslice:
      return "reslice";
    case RebalanceKind::kMigrate:
      return "migrate";
    case RebalanceKind::kScaleUp:
      return "scale_up";
    case RebalanceKind::kScaleDown:
      return "scale_down";
  }
  return "unknown";
}

asbase::Json RebalanceEvent::ToJson() const {
  asbase::Json doc;
  doc.Set("mono_nanos", mono_nanos);
  doc.Set("wall_micros", wall_micros);
  doc.Set("kind", RebalanceKindName(kind));
  doc.Set("from_shard", static_cast<int64_t>(from_shard));
  doc.Set("to_shard", static_cast<int64_t>(to_shard));
  if (!workflow.empty()) {
    doc.Set("workflow", workflow);
  }
  doc.Set("detail", detail);
  return doc;
}

RebalanceLog& RebalanceLog::Global() {
  static RebalanceLog* log = new RebalanceLog();
  return *log;
}

void RebalanceLog::Record(RebalanceEvent event) {
  if (event.mono_nanos == 0) {
    event.mono_nanos = asbase::MonoNanos();
  }
  if (event.wall_micros == 0) {
    event.wall_micros = asbase::WallMicros();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
  ++recorded_;
  while (events_.size() > kCapacity) {
    events_.pop_front();
  }
}

std::vector<RebalanceEvent> RebalanceLog::Snapshot(int64_t since_nanos) const {
  std::vector<RebalanceEvent> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(events_.size());
  for (const RebalanceEvent& event : events_) {
    if (event.mono_nanos > since_nanos) {
      out.push_back(event);
    }
  }
  return out;
}

asbase::Json RebalanceLog::ToJson(int64_t since_nanos) const {
  asbase::Json events{asbase::JsonArray{}};
  for (const RebalanceEvent& event : Snapshot(since_nanos)) {
    events.Append(event.ToJson());
  }
  return events;
}

uint64_t RebalanceLog::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

void RebalanceLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

}  // namespace asobs
