// asobs: process-global metrics for a live AsVisor (observability tentpole).
//
// The bench harness measures AlloyStack from the outside; this registry is
// the inside view — counters and latency summaries the runtime updates on
// its hot paths and the watchdog exports as Prometheus text (`GET /metrics`).
//
// Design rules, in order:
//   1. Hot paths pay one relaxed atomic op, or nothing. Instrumented sites
//      cache `Counter&` references (stable for the process lifetime) so the
//      name/label lookup happens once. Paths too hot even for that (the MPK
//      domain switch) register a *collector* instead: a callback that reads
//      counters the subsystem already maintains, at scrape time only.
//   2. Metric names follow `alloy_<subsystem>_<what>_<unit>` (DESIGN.md
//      "Observability"). The standard families are declared up front so
//      `/metrics` always shows the full schema, zero-valued or not.
//   3. Exposition is deterministic (families and series sorted) so tests can
//      golden-check it.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"

namespace asobs {

// Label set attached to one series, e.g. {{"backend", "emulated"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kSummary };

// Monotonically increasing count. All ops are relaxed atomics.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (resident bytes, live WFDs, ...).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Thread-safe, windowed latency summary over asbase::Histogram.
//
// Memory is bounded by keeping two sample epochs: when the current epoch
// fills up it becomes the previous one and recording starts fresh, so a
// snapshot always covers between `window` and `2*window` recent samples.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(size_t window = 1u << 16) : window_(window) {}

  void Record(int64_t value_nanos);
  void Merge(const asbase::Histogram& other);

  // Merged copy of both epochs (safe to query without further locking).
  asbase::Histogram Snapshot() const;
  asbase::Json ToJson() const { return Snapshot().ToJson(); }
  void Reset();

 private:
  mutable std::mutex mutex_;
  size_t window_;
  asbase::Histogram current_;
  asbase::Histogram previous_;
};

// Hands collector callbacks a way to contribute samples at scrape time.
class MetricEmitter {
 public:
  void Emit(const std::string& name, MetricType type, const Labels& labels,
            uint64_t value);

 private:
  friend class Registry;
  struct Sample {
    std::string name;
    MetricType type;
    Labels labels;
    uint64_t value;
  };
  std::vector<Sample> samples_;
};

class Registry {
 public:
  Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every runtime component reports into.
  static Registry& Global();

  // Lookup-or-create. The returned reference is stable for the lifetime of
  // the registry; instrumented sites cache it. Type mismatches on an
  // existing name abort (a metric name means one thing).
  Counter& GetCounter(const std::string& name, const Labels& labels = {});
  Gauge& GetGauge(const std::string& name, const Labels& labels = {});
  LatencyHistogram& GetHistogram(const std::string& name,
                                 const Labels& labels = {});

  // Declares an (initially empty) family so its `# TYPE` line always shows
  // in the exposition, even before the first series is created.
  void DeclareFamily(const std::string& name, MetricType type);

  // Scrape-time callback; emits samples computed from state the subsystem
  // already keeps (zero hot-path cost). Runs on every RenderPrometheus().
  void RegisterCollector(std::function<void(MetricEmitter&)> collector);

  // Prometheus text exposition format 0.0.4.
  std::string RenderPrometheus() const;

  // Zeroes every series in place. Series objects and collectors survive, so
  // the `Counter&` references instrumented sites cache stay valid. Tests
  // only. (Collector-backed values reflect live subsystem state and are not
  // zeroed here.)
  void Reset();

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    MetricType type = MetricType::kCounter;
    // Keyed by serialized label set for deterministic output.
    std::map<std::string, Series> series;
  };

  Family& FamilyLocked(const std::string& name, MetricType type);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
  std::vector<std::function<void(MetricEmitter&)>> collectors_;
};

// `{a="b",c="d"}` with Prometheus escaping; empty labels render as "".
std::string SerializeLabels(const Labels& labels);

}  // namespace asobs

#endif  // SRC_OBS_METRICS_H_
