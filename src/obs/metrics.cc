#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/common/logging.h"

namespace asobs {
namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kSummary:
      return "summary";
  }
  return "untyped";
}

void AppendEscaped(std::string& out, const std::string& value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

// The metric-naming contract (DESIGN.md "Observability"). Declared on
// registry construction so `/metrics` always exposes the full schema.
constexpr struct {
  const char* name;
  MetricType type;
} kStandardFamilies[] = {
    {"alloy_visor_invocations_total", MetricType::kCounter},
    {"alloy_visor_invocation_failures_total", MetricType::kCounter},
    {"alloy_visor_invoke_nanos", MetricType::kSummary},
    {"alloy_visor_pool_hits_total", MetricType::kCounter},
    {"alloy_visor_pool_misses_total", MetricType::kCounter},
    {"alloy_visor_pool_evictions_total", MetricType::kCounter},
    {"alloy_visor_timeouts_total", MetricType::kCounter},
    {"alloy_visor_rejections_total", MetricType::kCounter},
    {"alloy_visor_inflight", MetricType::kGauge},
    {"alloy_visor_queued", MetricType::kGauge},
    {"alloy_visor_queue_wait_nanos", MetricType::kSummary},
    {"alloy_visor_prewarms_total", MetricType::kCounter},
    {"alloy_visor_pool_resident_bytes", MetricType::kGauge},
    {"alloy_visor_pool_lease_nanos", MetricType::kSummary},
    {"alloy_visor_snapshot_creates_total", MetricType::kCounter},
    {"alloy_visor_snapshot_clones_total", MetricType::kCounter},
    {"alloy_visor_snapshot_invalidations_total", MetricType::kCounter},
    {"alloy_visor_snapshot_fallback_boots_total", MetricType::kCounter},
    {"alloy_visor_snapshot_clone_nanos", MetricType::kSummary},
    {"alloy_visor_flight_records_total", MetricType::kCounter},
    {"alloy_visor_flight_dropped_total", MetricType::kCounter},
    {"alloy_visor_traces_retained_total", MetricType::kCounter},
    {"alloy_slo_burn_rate", MetricType::kGauge},
    {"alloy_slo_blackbox_snapshots_total", MetricType::kCounter},
    {"alloy_rebalance_reslices_total", MetricType::kCounter},
    {"alloy_rebalance_migrations_total", MetricType::kCounter},
    {"alloy_rebalance_scale_ups_total", MetricType::kCounter},
    {"alloy_rebalance_scale_downs_total", MetricType::kCounter},
    {"alloy_rebalance_shards", MetricType::kGauge},
    {"alloy_rebalance_queue_handoffs_total", MetricType::kCounter},
    {"alloy_orch_thread_spawns_total", MetricType::kCounter},
    {"alloy_orch_dispatch_nanos", MetricType::kSummary},
    {"alloy_libos_module_loads_total", MetricType::kCounter},
    {"alloy_libos_module_hits_total", MetricType::kCounter},
    {"alloy_libos_module_load_nanos", MetricType::kSummary},
    {"alloy_mpk_domain_switches_total", MetricType::kCounter},
    {"alloy_mpk_domain_switch_nanos_total", MetricType::kCounter},
    {"alloy_asbuffer_bytes_total", MetricType::kCounter},
    {"alloy_asbuffer_transfer_bytes", MetricType::kSummary},
    {"alloy_asbuffer_tx_pins_total", MetricType::kCounter},
    {"alloy_asbuffer_tx_pinned", MetricType::kGauge},
    {"alloy_asbuffer_pinned_release_total", MetricType::kCounter},
    {"alloy_net_tx_packets_total", MetricType::kCounter},
    {"alloy_net_rx_packets_total", MetricType::kCounter},
    {"alloy_net_tx_bytes_total", MetricType::kCounter},
    {"alloy_net_rx_bytes_total", MetricType::kCounter},
    {"alloy_net_poll_iterations_total", MetricType::kCounter},
    {"alloy_net_rx_dropped_total", MetricType::kCounter},
    {"alloy_net_tx_backpressure_nanos", MetricType::kSummary},
    {"alloy_net_tx_pins_aborted_total", MetricType::kCounter},
    {"alloy_net_rx_pool_blocks_total", MetricType::kCounter},
    {"alloy_edge_connections", MetricType::kGauge},
    {"alloy_edge_accepts_total", MetricType::kCounter},
    {"alloy_edge_overflows_total", MetricType::kCounter},
    {"alloy_edge_reaped_total", MetricType::kCounter},
    {"alloy_edge_parse_errors_total", MetricType::kCounter},
    {"alloy_edge_requests_total", MetricType::kCounter},
    {"alloy_fs_read_ops_total", MetricType::kCounter},
    {"alloy_fs_write_ops_total", MetricType::kCounter},
    {"alloy_fs_read_bytes_total", MetricType::kCounter},
    {"alloy_fs_write_bytes_total", MetricType::kCounter},
};

}  // namespace

std::string SerializeLabels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += key;
    out += "=\"";
    AppendEscaped(out, value);
    out += "\"";
  }
  out += "}";
  return out;
}

// ------------------------------------------------------- LatencyHistogram

void LatencyHistogram::Record(int64_t value_nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.Record(value_nanos);
  if (current_.count() >= window_) {
    previous_ = std::move(current_);
    current_ = asbase::Histogram();
  }
}

void LatencyHistogram::Merge(const asbase::Histogram& other) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.Merge(other);
  if (current_.count() >= window_) {
    previous_ = std::move(current_);
    current_ = asbase::Histogram();
  }
}

asbase::Histogram LatencyHistogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  asbase::Histogram merged = previous_;
  merged.Merge(current_);
  return merged;
}

void LatencyHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  current_.Clear();
  previous_.Clear();
}

// ------------------------------------------------------------ MetricEmitter

void MetricEmitter::Emit(const std::string& name, MetricType type,
                         const Labels& labels, uint64_t value) {
  samples_.push_back(Sample{name, type, labels, value});
}

// ----------------------------------------------------------------- Registry

Registry::Registry() {
  for (const auto& family : kStandardFamilies) {
    DeclareFamily(family.name, family.type);
  }
}

Registry& Registry::Global() {
  static auto* registry = new Registry();
  return *registry;
}

Registry::Family& Registry::FamilyLocked(const std::string& name,
                                         MetricType type) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.type = type;
  } else {
    AS_CHECK(it->second.type == type)
        << "metric family '" << name << "' re-registered as "
        << TypeName(type) << " (was " << TypeName(it->second.type) << ")";
  }
  return it->second;
}

Counter& Registry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      FamilyLocked(name, MetricType::kCounter).series[SerializeLabels(labels)];
  if (series.counter == nullptr) {
    series.labels = labels;
    series.counter = std::make_unique<Counter>();
  }
  return *series.counter;
}

Gauge& Registry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      FamilyLocked(name, MetricType::kGauge).series[SerializeLabels(labels)];
  if (series.gauge == nullptr) {
    series.labels = labels;
    series.gauge = std::make_unique<Gauge>();
  }
  return *series.gauge;
}

LatencyHistogram& Registry::GetHistogram(const std::string& name,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      FamilyLocked(name, MetricType::kSummary).series[SerializeLabels(labels)];
  if (series.histogram == nullptr) {
    series.labels = labels;
    series.histogram = std::make_unique<LatencyHistogram>();
  }
  return *series.histogram;
}

void Registry::DeclareFamily(const std::string& name, MetricType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  FamilyLocked(name, type);
}

void Registry::RegisterCollector(
    std::function<void(MetricEmitter&)> collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.push_back(std::move(collector));
}

std::string Registry::RenderPrometheus() const {
  // Render families -> lines into a sorted map so output is deterministic
  // and collector samples merge into the same families.
  struct RenderFamily {
    MetricType type;
    std::vector<std::string> lines;
  };
  std::map<std::string, RenderFamily> rendered;

  char buf[128];
  std::vector<std::function<void(MetricEmitter&)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors = collectors_;
    for (const auto& [name, family] : families_) {
      RenderFamily& out = rendered[name];
      out.type = family.type;
      for (const auto& [label_key, series] : family.series) {
        if (series.counter != nullptr) {
          std::snprintf(buf, sizeof(buf), " %" PRIu64,
                        series.counter->value());
          out.lines.push_back(name + label_key + buf);
        } else if (series.gauge != nullptr) {
          std::snprintf(buf, sizeof(buf), " %lld",
                        static_cast<long long>(series.gauge->value()));
          out.lines.push_back(name + label_key + buf);
        } else if (series.histogram != nullptr) {
          const asbase::Histogram snapshot = series.histogram->Snapshot();
          const double quantiles[] = {0.5, 0.99, 0.999};
          for (double q : quantiles) {
            Labels quantile_labels = series.labels;
            std::snprintf(buf, sizeof(buf), "%g", q);
            quantile_labels.emplace_back("quantile", buf);
            std::snprintf(buf, sizeof(buf), " %lld",
                          static_cast<long long>(snapshot.Percentile(q)));
            out.lines.push_back(name + SerializeLabels(quantile_labels) + buf);
          }
          std::snprintf(buf, sizeof(buf), " %.0f",
                        snapshot.mean() * static_cast<double>(snapshot.count()));
          out.lines.push_back(name + "_sum" + label_key + buf);
          std::snprintf(buf, sizeof(buf), " %zu", snapshot.count());
          out.lines.push_back(name + "_count" + label_key + buf);
        }
      }
    }
  }

  // Collectors run unlocked: they may read other subsystems' locks.
  MetricEmitter emitter;
  for (const auto& collector : collectors) {
    collector(emitter);
  }
  for (const auto& sample : emitter.samples_) {
    RenderFamily& out = rendered[sample.name];
    out.type = sample.type;
    std::snprintf(buf, sizeof(buf), " %" PRIu64, sample.value);
    out.lines.push_back(sample.name + SerializeLabels(sample.labels) + buf);
  }

  std::string text;
  for (auto& [name, family] : rendered) {
    text += "# TYPE " + name + " " + TypeName(family.type) + "\n";
    std::sort(family.lines.begin(), family.lines.end());
    for (const std::string& line : family.lines) {
      text += line;
      text += "\n";
    }
  }
  return text;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (auto& [label_key, series] : family.series) {
      if (series.counter != nullptr) {
        series.counter->Reset();
      }
      if (series.gauge != nullptr) {
        series.gauge->Reset();
      }
      if (series.histogram != nullptr) {
        series.histogram->Reset();
      }
    }
  }
}

}  // namespace asobs
