#include "src/obs/flight.h"

#include <algorithm>
#include <cmath>

#include "src/common/histogram.h"

namespace asobs {

const char* FlightOutcomeName(FlightOutcome outcome) {
  switch (outcome) {
    case FlightOutcome::kOk:
      return "ok";
    case FlightOutcome::kError:
      return "error";
    case FlightOutcome::kTimeout:
      return "timeout";
    case FlightOutcome::kRejected:
      return "rejected";
  }
  return "unknown";
}

asbase::Json FlightRecord::ToJson() const {
  asbase::Json doc{asbase::JsonObject{}};
  doc.Set("workflow", workflow);
  doc.Set("shard", static_cast<int64_t>(shard));
  doc.Set("outcome", FlightOutcomeName(outcome));
  doc.Set("warm_start", warm_start);
  doc.Set("start_nanos", start_nanos);
  doc.Set("end_nanos", end_nanos);
  doc.Set("total_nanos", total_nanos);
  asbase::Json phases{asbase::JsonObject{}};
  phases.Set("queue_wait_nanos", queue_wait_nanos);
  phases.Set("lease_nanos", lease_nanos);
  phases.Set("module_load_nanos", module_load_nanos);
  phases.Set("exec_nanos", exec_nanos);
  phases.Set("net_nanos", net_nanos);
  phases.Set("reset_nanos", reset_nanos);
  doc.Set("phases", std::move(phases));
  asbase::JsonArray stage_list;
  for (uint32_t i = 0; i < stages && i < kMaxStages; ++i) {
    stage_list.push_back(asbase::Json(stage_nanos[i]));
  }
  doc.Set("stage_nanos", asbase::Json(std::move(stage_list)));
  return doc;
}

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) {
    slots_ = std::make_unique<Slot[]>(capacity_);
  }
}

uint32_t FlightRecorder::InternWorkflow(const std::string& name) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<uint32_t>(i + 1);
    }
  }
  names_.push_back(name);
  return static_cast<uint32_t>(names_.size());
}

std::string FlightRecorder::WorkflowName(uint32_t id) const {
  std::lock_guard<std::mutex> lock(names_mutex_);
  if (id == 0 || id > names_.size()) {
    return "";
  }
  return names_[id - 1];
}

bool FlightRecorder::Record(uint32_t workflow_id, const FlightRecord& record) {
#ifdef ALLOY_DISABLE_FLIGHT
  (void)workflow_id;
  (void)record;
  return false;
#else
  if (capacity_ == 0) {
    return false;
  }
  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];

  // Claim the slot: even → odd on whatever sequence the slot is at. The CAS
  // fails only when a lapped writer (the ring wrapped a full turn mid-write)
  // is inside the same slot right now — then drop and count, never spin on
  // a hot path. The claim must NOT expect a lap-derived value (2 × lap):
  // one dropped write would leave the slot's sequence behind every later
  // ticket's expectation and permanently kill the slot.
  uint64_t expected = slot.seq.load(std::memory_order_relaxed);
  if ((expected & 1) != 0 ||
      !slot.seq.compare_exchange_strong(expected, expected + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  slot.workflow_id.store(workflow_id, std::memory_order_relaxed);
  slot.shard.store(record.shard, std::memory_order_relaxed);
  slot.outcome.store(static_cast<uint32_t>(record.outcome),
                     std::memory_order_relaxed);
  slot.warm_start.store(record.warm_start ? 1 : 0, std::memory_order_relaxed);
  slot.start_nanos.store(record.start_nanos, std::memory_order_relaxed);
  slot.end_nanos.store(record.end_nanos, std::memory_order_relaxed);
  slot.total_nanos.store(record.total_nanos, std::memory_order_relaxed);
  slot.queue_wait_nanos.store(record.queue_wait_nanos,
                              std::memory_order_relaxed);
  slot.lease_nanos.store(record.lease_nanos, std::memory_order_relaxed);
  slot.module_load_nanos.store(record.module_load_nanos,
                               std::memory_order_relaxed);
  slot.exec_nanos.store(record.exec_nanos, std::memory_order_relaxed);
  slot.net_nanos.store(record.net_nanos, std::memory_order_relaxed);
  slot.reset_nanos.store(record.reset_nanos, std::memory_order_relaxed);
  const uint32_t stages =
      std::min<uint32_t>(record.stages, FlightRecord::kMaxStages);
  slot.stages.store(stages, std::memory_order_relaxed);
  for (uint32_t i = 0; i < stages; ++i) {
    slot.stage_nanos[i].store(record.stage_nanos[i],
                              std::memory_order_relaxed);
  }

  // Release: odd → even of the next lap. Readers that acquire-loaded the odd
  // value skip; readers that see the even value and re-read it unchanged got
  // a consistent record.
  slot.seq.store(expected + 2, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  return true;
#endif  // ALLOY_DISABLE_FLIGHT
}

std::vector<FlightRecord> FlightRecorder::Snapshot(const std::string& workflow,
                                                   int64_t since_nanos) const {
  std::vector<FlightRecord> out;
  if (capacity_ == 0) {
    return out;
  }
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    FlightRecord record;
    uint32_t workflow_id = 0;
    bool consistent = false;
    // Two attempts: a slot that changes twice under one scrape is being
    // hammered; its contents will show up again on the next scrape.
    for (int attempt = 0; attempt < 2 && !consistent; ++attempt) {
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1) != 0) {
        break;  // never written, or write in progress
      }
      workflow_id = slot.workflow_id.load(std::memory_order_relaxed);
      record.shard = slot.shard.load(std::memory_order_relaxed);
      record.outcome = static_cast<FlightOutcome>(
          slot.outcome.load(std::memory_order_relaxed));
      record.warm_start =
          slot.warm_start.load(std::memory_order_relaxed) != 0;
      record.start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
      record.end_nanos = slot.end_nanos.load(std::memory_order_relaxed);
      record.total_nanos = slot.total_nanos.load(std::memory_order_relaxed);
      record.queue_wait_nanos =
          slot.queue_wait_nanos.load(std::memory_order_relaxed);
      record.lease_nanos = slot.lease_nanos.load(std::memory_order_relaxed);
      record.module_load_nanos =
          slot.module_load_nanos.load(std::memory_order_relaxed);
      record.exec_nanos = slot.exec_nanos.load(std::memory_order_relaxed);
      record.net_nanos = slot.net_nanos.load(std::memory_order_relaxed);
      record.reset_nanos = slot.reset_nanos.load(std::memory_order_relaxed);
      record.stages = std::min<uint32_t>(
          slot.stages.load(std::memory_order_relaxed),
          FlightRecord::kMaxStages);
      for (uint32_t s = 0; s < record.stages; ++s) {
        record.stage_nanos[s] =
            slot.stage_nanos[s].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      consistent = slot.seq.load(std::memory_order_relaxed) == before;
    }
    if (!consistent) {
      continue;
    }
    if (since_nanos > 0 && record.end_nanos <= since_nanos) {
      continue;
    }
    record.workflow = WorkflowName(workflow_id);
    if (!workflow.empty() && record.workflow != workflow) {
      continue;
    }
    out.push_back(std::move(record));
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.end_nanos < b.end_nanos;
            });
  return out;
}

asbase::Json FlightReportJson(const std::vector<FlightRecord>& records) {
  asbase::JsonArray list;
  list.reserve(records.size());
  for (const FlightRecord& record : records) {
    list.push_back(record.ToJson());
  }
  asbase::Json doc{asbase::JsonObject{}};
  doc.Set("count", static_cast<int64_t>(records.size()));
  doc.Set("records", asbase::Json(std::move(list)));
  return doc;
}

namespace {

// Disjoint attribution buckets (see LatencyAttributionJson's header comment).
struct Buckets {
  static constexpr size_t kCount = 7;
  static const char* Name(size_t i) {
    static const char* names[kCount] = {"queue_wait", "lease", "module_load",
                                        "exec",       "net",   "reset",
                                        "other"};
    return names[i];
  }
  static void Fill(const FlightRecord& r, int64_t out[kCount]) {
    out[0] = r.queue_wait_nanos;
    out[1] = r.lease_nanos;
    out[2] = r.module_load_nanos;
    out[3] = std::max<int64_t>(
        0, r.exec_nanos - r.module_load_nanos - r.net_nanos);
    out[4] = r.net_nanos;
    out[5] = r.reset_nanos;
    int64_t covered = out[0] + out[1] + out[2] + out[3] + out[4] + out[5];
    out[6] = std::max<int64_t>(0, r.total_nanos - covered);
  }
};

asbase::Json Quantiles(const asbase::Histogram& hist) {
  asbase::Json doc{asbase::JsonObject{}};
  doc.Set("p50_nanos", hist.Percentile(0.50));
  doc.Set("p95_nanos", hist.Percentile(0.95));
  doc.Set("p99_nanos", hist.Percentile(0.99));
  return doc;
}

}  // namespace

asbase::Json LatencyAttributionJson(const std::vector<FlightRecord>& records) {
  asbase::Json doc{asbase::JsonObject{}};
  doc.Set("count", static_cast<int64_t>(records.size()));
  if (records.empty()) {
    return doc;
  }

  asbase::Histogram totals;
  asbase::Histogram per_bucket[Buckets::kCount];
  for (const FlightRecord& record : records) {
    totals.Record(record.total_nanos);
    int64_t values[Buckets::kCount];
    Buckets::Fill(record, values);
    for (size_t i = 0; i < Buckets::kCount; ++i) {
      per_bucket[i].Record(values[i]);
    }
  }
  doc.Set("total", Quantiles(totals));

  // Tail attribution: among the slowest 5% of invocations, which bucket owns
  // the most time?
  const int64_t tail_cut = totals.Percentile(0.95);
  int64_t tail_sums[Buckets::kCount] = {};
  int64_t tail_total = 0;
  for (const FlightRecord& record : records) {
    if (record.total_nanos < tail_cut) {
      continue;
    }
    int64_t values[Buckets::kCount];
    Buckets::Fill(record, values);
    for (size_t i = 0; i < Buckets::kCount; ++i) {
      tail_sums[i] += values[i];
      tail_total += values[i];
    }
  }

  asbase::Json phases{asbase::JsonObject{}};
  size_t owner = 0;
  for (size_t i = 0; i < Buckets::kCount; ++i) {
    asbase::Json phase = Quantiles(per_bucket[i]);
    const double share =
        tail_total > 0
            ? static_cast<double>(tail_sums[i]) /
                  static_cast<double>(tail_total)
            : 0.0;
    phase.Set("tail_share", std::round(share * 1000.0) / 1000.0);
    phases.Set(Buckets::Name(i), std::move(phase));
    if (tail_sums[i] > tail_sums[owner]) {
      owner = i;
    }
  }
  doc.Set("phases", std::move(phases));
  doc.Set("tail_owner", Buckets::Name(owner));
  return doc;
}

}  // namespace asobs
