#include "src/obs/trace.h"

#include "src/common/clock.h"
#include "src/common/logging.h"

namespace asobs {

// ---------------------------------------------------------------------- Span

Span::Span(Trace* trace, uint32_t id, uint32_t parent, std::string name,
           std::string category)
    : trace_(trace), id_(id), parent_(parent), name_(std::move(name)),
      category_(std::move(category)), start_nanos_(asbase::MonoNanos()) {}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    trace_ = other.trace_;
    id_ = other.id_;
    parent_ = other.parent_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    start_nanos_ = other.start_nanos_;
    args_ = std::move(other.args_);
    other.trace_ = nullptr;
  }
  return *this;
}

void Span::SetArg(std::string key, std::string value) {
  if (trace_ != nullptr) {
    args_.emplace_back(std::move(key), std::move(value));
  }
}

void Span::End() {
  if (trace_ == nullptr) {
    return;
  }
  SpanRecord record;
  record.id = id_;
  record.parent = parent_;
  record.name = std::move(name_);
  record.category = std::move(category_);
  record.start_nanos = start_nanos_;
  record.duration_nanos = asbase::MonoNanos() - start_nanos_;
  record.thread_id = asbase::ThreadId();
  record.args = std::move(args_);
  trace_->Record(std::move(record));
  trace_ = nullptr;
}

// --------------------------------------------------------------------- Trace

Trace::Trace(std::string workflow)
    : workflow_(std::move(workflow)), start_nanos_(asbase::MonoNanos()) {}

Span Trace::StartSpan(std::string name, std::string category,
                      uint32_t parent) {
  const uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return Span(this, id, parent, std::move(name), std::move(category));
}

uint32_t Trace::RecordSpan(std::string name, std::string category,
                           uint32_t parent, int64_t start_nanos,
                           int64_t duration_nanos) {
  const uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  SpanRecord record;
  record.id = id;
  record.parent = parent;
  record.name = std::move(name);
  record.category = std::move(category);
  record.start_nanos = start_nanos;
  record.duration_nanos = duration_nanos;
  record.thread_id = 0;
  Record(std::move(record));
  return id;
}

void Trace::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Trace::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void Trace::AppendChromeEvents(asbase::JsonArray& events, int pid) const {
  std::vector<SpanRecord> spans = Spans();
  {
    // Process metadata so the viewer shows the workflow name per invocation.
    asbase::Json meta;
    meta.Set("name", "process_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<int64_t>(pid));
    asbase::Json args;
    args.Set("name", workflow_);
    meta.Set("args", std::move(args));
    events.push_back(std::move(meta));
  }
  for (const SpanRecord& span : spans) {
    asbase::Json event;
    event.Set("name", span.name);
    event.Set("cat", span.category);
    event.Set("ph", "X");
    // Chrome wants microseconds; keep nanosecond precision as fractions.
    event.Set("ts", static_cast<double>(span.start_nanos) / 1e3);
    event.Set("dur", static_cast<double>(span.duration_nanos) / 1e3);
    event.Set("pid", static_cast<int64_t>(pid));
    event.Set("tid", static_cast<int64_t>(span.thread_id));
    asbase::Json args;
    args.Set("span_id", static_cast<int64_t>(span.id));
    args.Set("parent_id", static_cast<int64_t>(span.parent));
    for (const auto& [key, value] : span.args) {
      args.Set(key, value);
    }
    event.Set("args", std::move(args));
    events.push_back(std::move(event));
  }
}

asbase::Json Trace::ToChromeJson() const {
  asbase::JsonArray events;
  AppendChromeEvents(events, /*pid=*/1);
  asbase::Json doc;
  doc.Set("displayTimeUnit", "ms");
  doc.Set("traceEvents", asbase::Json(std::move(events)));
  return doc;
}

}  // namespace asobs
