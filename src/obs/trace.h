// asobs tracing: per-WFD spans explaining where an invocation's time went.
//
// One `Trace` lives for one `AsVisor::Invoke`: the visor opens the root
// "invoke" span, the WFD/libos/orchestrator open children (wfd_create,
// module_load, stage, function instance), each closed by RAII. A finished
// trace serializes to Chrome trace_event JSON ("traceEvents" of complete
// "ph":"X" events), so `GET /trace?workflow=...` output opens directly in
// about:tracing or https://ui.perfetto.dev.
//
// Threading: spans are created and ended from arbitrary threads (orchestrator
// instance threads included); the trace records completed spans under a
// mutex. A span itself is single-owner and movable, not shared.

#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"

namespace asobs {

class Trace;

// A completed span, as stored on the trace.
struct SpanRecord {
  uint32_t id = 0;
  uint32_t parent = 0;  // 0 = no parent (root)
  std::string name;
  std::string category;
  int64_t start_nanos = 0;     // asbase::MonoNanos at StartSpan
  int64_t duration_nanos = 0;
  uint64_t thread_id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

// RAII handle for an open span; records itself on the trace when ended
// (explicitly or by destruction).
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Id to parent child spans under; stays valid after End().
  uint32_t id() const { return id_; }
  bool active() const { return trace_ != nullptr; }

  void SetArg(std::string key, std::string value);

  // Closes the span and records it. Idempotent.
  void End();

 private:
  friend class Trace;
  Span(Trace* trace, uint32_t id, uint32_t parent, std::string name,
       std::string category);

  Trace* trace_ = nullptr;
  uint32_t id_ = 0;
  uint32_t parent_ = 0;
  std::string name_;
  std::string category_;
  int64_t start_nanos_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

class Trace {
 public:
  explicit Trace(std::string workflow);

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const std::string& workflow() const { return workflow_; }
  int64_t start_nanos() const { return start_nanos_; }

  // Opens a span. parent == 0 makes a root-level span.
  Span StartSpan(std::string name, std::string category, uint32_t parent = 0);

  // Records an already-finished interval (e.g. time spent in the admission
  // queue before the trace existed) as a completed span.
  uint32_t RecordSpan(std::string name, std::string category, uint32_t parent,
                      int64_t start_nanos, int64_t duration_nanos);

  // Completed spans, in end order.
  std::vector<SpanRecord> Spans() const;

  // Appends this trace's events to `events` as Chrome complete events.
  // `pid` groups one invocation per "process" in the viewer.
  void AppendChromeEvents(asbase::JsonArray& events, int pid) const;

  // {"displayTimeUnit":"ms","traceEvents":[...]} — one invocation.
  asbase::Json ToChromeJson() const;

 private:
  friend class Span;
  void Record(SpanRecord record);

  std::string workflow_;
  int64_t start_nanos_;
  std::atomic<uint32_t> next_id_{1};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

}  // namespace asobs

#endif  // SRC_OBS_TRACE_H_
