#include "src/obs/slo.h"

namespace asobs {
namespace {

// Memory bound independent of traffic rate; at this depth the oldest event
// is far outside any sane slow window anyway.
constexpr size_t kMaxEvents = 8192;

}  // namespace

SloTracker::SloTracker(SloOptions options) : options_(options) {}

void SloTracker::PruneLocked(int64_t now_nanos) {
  const int64_t horizon = now_nanos - options_.slow_window_ms * 1'000'000;
  while (!events_.empty() &&
         (events_.front().nanos < horizon || events_.size() > kMaxEvents)) {
    events_.pop_front();
  }
}

double SloTracker::BurnLocked(int64_t window_ms, int64_t now_nanos) const {
  const int64_t horizon = now_nanos - window_ms * 1'000'000;
  size_t total = 0;
  size_t bad = 0;
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->nanos < horizon) {
      break;  // events are time-ordered; everything older is out of window
    }
    ++total;
    if (!it->good) {
      ++bad;
    }
  }
  if (total == 0) {
    return 0.0;
  }
  const double budget = 1.0 - options_.objective;
  if (budget <= 0.0) {
    return bad > 0 ? 1e9 : 0.0;  // zero budget: any failure is infinite burn
  }
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

SloTracker::Verdict SloTracker::Record(bool good, bool timeout,
                                       int64_t now_nanos) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(Event{now_nanos, good, timeout});
  PruneLocked(now_nanos);

  Verdict verdict;
  verdict.fast_burn = BurnLocked(options_.fast_window_ms, now_nanos);
  verdict.slow_burn = BurnLocked(options_.slow_window_ms, now_nanos);

  const int64_t fast_horizon =
      now_nanos - options_.fast_window_ms * 1'000'000;
  int timeouts_in_fast = 0;
  for (auto it = events_.rbegin(); it != events_.rend(); ++it) {
    if (it->nanos < fast_horizon) {
      break;
    }
    if (it->timeout) {
      ++timeouts_in_fast;
    }
  }

  const char* reason = nullptr;
  if (options_.timeout_burst > 0 &&
      timeouts_in_fast >= options_.timeout_burst) {
    reason = "timeout_burst";
  } else if (verdict.fast_burn >= options_.fast_burn_threshold) {
    reason = "fast_burn";
  } else if (verdict.slow_burn >= options_.slow_burn_threshold) {
    reason = "slow_burn";
  }
  if (reason != nullptr) {
    const int64_t cooldown = options_.trigger_cooldown_ms * 1'000'000;
    if (last_trigger_nanos_ == 0 ||
        now_nanos - last_trigger_nanos_ >= cooldown) {
      last_trigger_nanos_ = now_nanos;
      verdict.trigger = true;
      verdict.reason = reason;
    }
  }
  return verdict;
}

double SloTracker::BurnRate(int64_t window_ms, int64_t now_nanos) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return BurnLocked(window_ms, now_nanos);
}

}  // namespace asobs
