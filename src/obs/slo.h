// asobs SLO tracker: per-workflow latency objective + error budget with
// multi-window burn-rate alerting (DESIGN.md §11).
//
// An SLO here is "fraction `objective` of invocations are good", where good
// means: completed without error/timeout AND (if a latency objective is set)
// under `latency_objective_ms`. The error budget is the allowed bad fraction,
// 1 - objective. The burn rate over a window is
//
//     burn = bad_fraction_in_window / (1 - objective)
//
// so burn == 1.0 means "spending budget exactly as fast as allowed", and the
// classic multi-window alert fires on a high burn over a short window
// (page-now: something just broke) or a sustained moderate burn over a long
// window (budget will exhaust within the SLO period). A third trigger — N
// timeouts inside the fast window — catches deadline bursts even when volume
// is too low for the fractional burn to clear its threshold.
//
// The tracker is pure bookkeeping: callers pass outcomes in and get a
// Verdict out; exporting `alloy_slo_burn_rate{window}` gauges and writing
// the black-box snapshot on `Verdict::trigger` is the visor's job. All time
// is caller-supplied (asbase::MonoNanos in production) so tests can replay
// a synthetic timeline.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <mutex>

namespace asobs {

struct SloOptions {
  // Fraction of invocations that must be good; budget is 1 - objective.
  double objective = 0.999;

  // Good requires total latency under this, in addition to a clean outcome.
  // 0 = outcome-only SLO (any successful completion is good).
  int64_t latency_objective_ms = 0;

  // Multi-window burn alerting (Google SRE workbook defaults, scaled to
  // this repo's test-friendly horizons).
  int64_t fast_window_ms = 5'000;
  int64_t slow_window_ms = 60'000;
  double fast_burn_threshold = 14.0;
  double slow_burn_threshold = 6.0;

  // This many timeouts inside the fast window trigger regardless of burn.
  int timeout_burst = 5;

  // Re-trigger suppression: one black box per incident, not per request.
  int64_t trigger_cooldown_ms = 30'000;
};

class SloTracker {
 public:
  struct Verdict {
    bool trigger = false;        // snapshot a black box now
    const char* reason = "";     // "fast_burn" | "slow_burn" | "timeout_burst"
    double fast_burn = 0.0;      // burn rate over the fast window
    double slow_burn = 0.0;      // burn rate over the slow window
  };

  explicit SloTracker(SloOptions options);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  const SloOptions& options() const { return options_; }

  // Accounts one finished invocation and evaluates the triggers.
  // `good` per the SLO definition above; `timeout` feeds the burst trigger.
  Verdict Record(bool good, bool timeout, int64_t now_nanos);

  // Burn rate over the trailing window, without recording anything.
  double BurnRate(int64_t window_ms, int64_t now_nanos) const;

 private:
  struct Event {
    int64_t nanos;
    bool good;
    bool timeout;
  };

  double BurnLocked(int64_t window_ms, int64_t now_nanos) const;
  void PruneLocked(int64_t now_nanos);

  const SloOptions options_;
  mutable std::mutex mutex_;
  std::deque<Event> events_;
  int64_t last_trigger_nanos_ = 0;
};

}  // namespace asobs

#endif  // SRC_OBS_SLO_H_
