// asobs rebalance log: a small process-global ring of control-plane events
// (DESIGN.md §12).
//
// The elastic shard mesh moves things at runtime — in-flight budget slices,
// whole workflows, the shard count itself. Each action is rare but changes
// how every latency number after it should be read: a p99 step at t is
// noise unless you can see the migration at t-50ms. The rebalance log keeps
// the last kCapacity control actions (kind, shards involved, workflow, a
// human-readable detail line) so they can ride along wherever invocation
// evidence is served: the router appends them to `/debug/flight` responses
// and the SLO watchdog embeds them in black-box snapshots.
//
// Unlike the flight recorder this is not a hot path — at most a few events
// per second, written by the rebalancer's control thread — so a plain mutex
// ring is the right tool; no seqlock heroics.

#ifndef SRC_OBS_REBALANCE_H_
#define SRC_OBS_REBALANCE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.h"

namespace asobs {

enum class RebalanceKind : uint32_t {
  kReslice = 0,    // in-flight budget slices re-divided across shards
  kMigrate = 1,    // a workflow moved between shards (queue handed off)
  kScaleUp = 2,    // a shard added to the mesh
  kScaleDown = 3,  // a shard drained and removed
};

const char* RebalanceKindName(RebalanceKind kind);

struct RebalanceEvent {
  int64_t mono_nanos = 0;   // asbase::MonoNanos at the time of the action
  int64_t wall_micros = 0;  // wall clock, for cross-host correlation
  RebalanceKind kind = RebalanceKind::kReslice;
  int32_t from_shard = -1;  // source shard (migrate / scale-down), else -1
  int32_t to_shard = -1;    // target shard (migrate / scale-up), else -1
  std::string workflow;     // migrations only
  std::string detail;       // e.g. "slices 8/8/8/8 -> 20/4/4/4"

  asbase::Json ToJson() const;
};

class RebalanceLog {
 public:
  static constexpr size_t kCapacity = 128;

  // The process-wide log the router's rebalancer writes and every evidence
  // endpoint reads. One per process matches one registry / one blackbox dir.
  static RebalanceLog& Global();

  void Record(RebalanceEvent event);

  // Events with mono_nanos > since_nanos, oldest first.
  std::vector<RebalanceEvent> Snapshot(int64_t since_nanos = 0) const;

  // JSON array of Snapshot(since_nanos) — the "rebalance_events" payload in
  // /debug/flight and black-box snapshots.
  asbase::Json ToJson(int64_t since_nanos = 0) const;

  uint64_t recorded() const;

  // Tests only: drop all events (the global log outlives each router).
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::deque<RebalanceEvent> events_;
  uint64_t recorded_ = 0;
};

}  // namespace asobs

#endif  // SRC_OBS_REBALANCE_H_
