#include "src/blockdev/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "src/common/clock.h"

namespace asblk {

asbase::Status BlockDevice::ValidateRange(uint64_t lba, size_t bytes) const {
  if (bytes == 0 || bytes % kBlockSize != 0) {
    return asbase::InvalidArgument("I/O size must be a multiple of 512");
  }
  const uint64_t blocks = bytes / kBlockSize;
  if (lba + blocks > block_count()) {
    return asbase::OutOfRange("I/O past end of device");
  }
  return asbase::OkStatus();
}

MemDisk::MemDisk(uint64_t block_count)
    : blocks_(block_count), data_(block_count * kBlockSize, 0) {}

asbase::Status MemDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, out.size()));
  std::memcpy(out.data(), data_.data() + lba * kBlockSize, out.size());
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status MemDisk::Write(uint64_t lba, std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, data.size()));
  std::memcpy(data_.data() + lba * kBlockSize, data.data(), data.size());
  CountWrite(data.size());
  return asbase::OkStatus();
}

asbase::Result<std::unique_ptr<FileDisk>> FileDisk::Create(
    const std::string& path, uint64_t block_count) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return asbase::Internal("cannot open disk image " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(block_count * kBlockSize)) != 0) {
    ::close(fd);
    return asbase::Internal("cannot size disk image " + path);
  }
  return std::unique_ptr<FileDisk>(new FileDisk(fd, block_count));
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

asbase::Status FileDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, out.size()));
  ssize_t n = ::pread(fd_, out.data(), out.size(),
                      static_cast<off_t>(lba * kBlockSize));
  if (n != static_cast<ssize_t>(out.size())) {
    return asbase::DataLoss("short read from disk image");
  }
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status FileDisk::Write(uint64_t lba, std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, data.size()));
  ssize_t n = ::pwrite(fd_, data.data(), data.size(),
                       static_cast<off_t>(lba * kBlockSize));
  if (n != static_cast<ssize_t>(data.size())) {
    return asbase::DataLoss("short write to disk image");
  }
  CountWrite(data.size());
  return asbase::OkStatus();
}

LatencyDisk::LatencyDisk(std::unique_ptr<BlockDevice> inner,
                         int64_t per_op_nanos, int64_t nanos_per_kib)
    : inner_(std::move(inner)),
      per_op_nanos_(per_op_nanos),
      nanos_per_kib_(nanos_per_kib) {}

void LatencyDisk::Charge(size_t bytes) {
  asbase::SpinFor(per_op_nanos_ +
                  nanos_per_kib_ * static_cast<int64_t>(bytes) / 1024);
}

asbase::Status LatencyDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  Charge(out.size());
  AS_RETURN_IF_ERROR(inner_->Read(lba, out));
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status LatencyDisk::Write(uint64_t lba,
                                  std::span<const uint8_t> data) {
  Charge(data.size());
  AS_RETURN_IF_ERROR(inner_->Write(lba, data));
  CountWrite(data.size());
  return asbase::OkStatus();
}

}  // namespace asblk
