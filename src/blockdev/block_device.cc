#include "src/blockdev/block_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "src/common/clock.h"

namespace asblk {

asbase::Status BlockDevice::ValidateRange(uint64_t lba, size_t bytes) const {
  if (bytes == 0 || bytes % kBlockSize != 0) {
    return asbase::InvalidArgument("I/O size must be a multiple of 512");
  }
  const uint64_t blocks = bytes / kBlockSize;
  if (lba + blocks > block_count()) {
    return asbase::OutOfRange("I/O past end of device");
  }
  return asbase::OkStatus();
}

size_t MemDiskImage::bytes() const {
  size_t total = 0;
  for (const auto& [index, chunk] : chunks) {
    total += chunk->size();
  }
  return total;
}

MemDisk::MemDisk(uint64_t block_count) : blocks_(block_count) {}

MemDisk::MemDisk(std::shared_ptr<const MemDiskImage> base)
    : blocks_(base == nullptr ? 0 : base->blocks), base_(std::move(base)) {}

const std::vector<uint8_t>* MemDisk::ChunkForRead(uint64_t chunk_index) const {
  auto it = chunks_.find(chunk_index);
  if (it != chunks_.end()) {
    return it->second.get();
  }
  if (base_ != nullptr) {
    auto base_it = base_->chunks.find(chunk_index);
    if (base_it != base_->chunks.end()) {
      return base_it->second.get();
    }
  }
  return nullptr;  // hole: zeros
}

std::vector<uint8_t>* MemDisk::ChunkForWrite(uint64_t chunk_index) {
  auto it = chunks_.find(chunk_index);
  if (it != chunks_.end()) {
    return it->second.get();
  }
  // First write into this chunk: copy the template's content (CoW break) or
  // start from zeros.
  std::shared_ptr<std::vector<uint8_t>> chunk;
  const std::vector<uint8_t>* base_chunk = nullptr;
  if (base_ != nullptr) {
    auto base_it = base_->chunks.find(chunk_index);
    if (base_it != base_->chunks.end()) {
      base_chunk = base_it->second.get();
    }
  }
  if (base_chunk != nullptr) {
    chunk = std::make_shared<std::vector<uint8_t>>(*base_chunk);
  } else {
    chunk = std::make_shared<std::vector<uint8_t>>(kChunkBytes, 0);
  }
  std::vector<uint8_t>* raw = chunk.get();
  chunks_.emplace(chunk_index, std::move(chunk));
  return raw;
}

asbase::Status MemDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, out.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t offset = lba * kBlockSize;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t chunk_index = offset / kChunkBytes;
    const size_t within = static_cast<size_t>(offset % kChunkBytes);
    const size_t len = std::min(out.size() - done, kChunkBytes - within);
    const std::vector<uint8_t>* chunk = ChunkForRead(chunk_index);
    if (chunk != nullptr) {
      std::memcpy(out.data() + done, chunk->data() + within, len);
    } else {
      std::memset(out.data() + done, 0, len);
    }
    done += len;
    offset += len;
  }
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status MemDisk::Write(uint64_t lba, std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, data.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t offset = lba * kBlockSize;
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t chunk_index = offset / kChunkBytes;
    const size_t within = static_cast<size_t>(offset % kChunkBytes);
    const size_t len = std::min(data.size() - done, kChunkBytes - within);
    std::vector<uint8_t>* chunk = ChunkForWrite(chunk_index);
    std::memcpy(chunk->data() + within, data.data() + done, len);
    done += len;
    offset += len;
  }
  CountWrite(data.size());
  return asbase::OkStatus();
}

std::shared_ptr<const MemDiskImage> MemDisk::SnapshotImage() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto image = std::make_shared<MemDiskImage>();
  image->blocks = blocks_;
  if (base_ != nullptr) {
    image->chunks = base_->chunks;
  }
  for (const auto& [index, chunk] : chunks_) {
    image->chunks[index] = chunk;
  }
  // The template disk becomes a CoW client of its own frozen image: its
  // next write to any of these chunks copies privately, so the image stays
  // immutable while the template keeps serving.
  base_ = image;
  chunks_.clear();
  return image;
}

size_t MemDisk::ResidentBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t total = 0;
  for (const auto& [index, chunk] : chunks_) {
    total += chunk->size();
  }
  return total;
}

asbase::Result<std::unique_ptr<FileDisk>> FileDisk::Create(
    const std::string& path, uint64_t block_count) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return asbase::Internal("cannot open disk image " + path);
  }
  if (::ftruncate(fd, static_cast<off_t>(block_count * kBlockSize)) != 0) {
    ::close(fd);
    return asbase::Internal("cannot size disk image " + path);
  }
  return std::unique_ptr<FileDisk>(new FileDisk(fd, block_count));
}

FileDisk::~FileDisk() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

asbase::Status FileDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, out.size()));
  ssize_t n = ::pread(fd_, out.data(), out.size(),
                      static_cast<off_t>(lba * kBlockSize));
  if (n != static_cast<ssize_t>(out.size())) {
    return asbase::DataLoss("short read from disk image");
  }
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status FileDisk::Write(uint64_t lba, std::span<const uint8_t> data) {
  AS_RETURN_IF_ERROR(ValidateRange(lba, data.size()));
  ssize_t n = ::pwrite(fd_, data.data(), data.size(),
                       static_cast<off_t>(lba * kBlockSize));
  if (n != static_cast<ssize_t>(data.size())) {
    return asbase::DataLoss("short write to disk image");
  }
  CountWrite(data.size());
  return asbase::OkStatus();
}

LatencyDisk::LatencyDisk(std::unique_ptr<BlockDevice> inner,
                         int64_t per_op_nanos, int64_t nanos_per_kib)
    : inner_(std::move(inner)),
      per_op_nanos_(per_op_nanos),
      nanos_per_kib_(nanos_per_kib) {}

void LatencyDisk::Charge(size_t bytes) {
  asbase::SpinFor(per_op_nanos_ +
                  nanos_per_kib_ * static_cast<int64_t>(bytes) / 1024);
}

asbase::Status LatencyDisk::Read(uint64_t lba, std::span<uint8_t> out) {
  Charge(out.size());
  AS_RETURN_IF_ERROR(inner_->Read(lba, out));
  CountRead(out.size());
  return asbase::OkStatus();
}

asbase::Status LatencyDisk::Write(uint64_t lba,
                                  std::span<const uint8_t> data) {
  Charge(data.size());
  AS_RETURN_IF_ERROR(inner_->Write(lba, data));
  CountWrite(data.size());
  return asbase::OkStatus();
}

}  // namespace asblk
