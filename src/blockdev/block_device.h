// Block device abstraction under the FAT filesystem (§7.1: each WFD gets a
// virtual disk image).
//
// Three implementations:
//   MemDisk     RAM-backed; the default WFD disk image.
//   FileDisk    pread/pwrite on a host file; persistent images.
//   LatencyDisk decorator charging a per-op + per-byte cost, used to model a
//               real SSD so fatfs-vs-ext4 comparisons (Table 4) are not
//               comparing RAM against media.

#ifndef SRC_BLOCKDEV_BLOCK_DEVICE_H_
#define SRC_BLOCKDEV_BLOCK_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace asblk {

class BlockDevice {
 public:
  static constexpr size_t kBlockSize = 512;

  virtual ~BlockDevice() = default;

  // out.size() must be a multiple of kBlockSize; reads out.size()/kBlockSize
  // consecutive blocks starting at `lba`.
  virtual asbase::Status Read(uint64_t lba, std::span<uint8_t> out) = 0;
  virtual asbase::Status Write(uint64_t lba,
                               std::span<const uint8_t> data) = 0;
  virtual uint64_t block_count() const = 0;

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };
  Stats stats() const {
    return Stats{reads_.load(), writes_.load(), bytes_read_.load(),
                 bytes_written_.load()};
  }

 protected:
  asbase::Status ValidateRange(uint64_t lba, size_t bytes) const;
  void CountRead(size_t bytes) {
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void CountWrite(size_t bytes) {
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

// Immutable disk template for snapshot-fork (DESIGN.md §14): the sparse set
// of touched chunks of a MemDisk at capture time. Shared by every clone (and
// by the template disk itself, which becomes a CoW client of its own image
// after SnapshotImage); chunk vectors are never mutated once they land here.
struct MemDiskImage {
  uint64_t blocks = 0;
  std::unordered_map<uint64_t, std::shared_ptr<std::vector<uint8_t>>> chunks;

  size_t bytes() const;
};

// RAM-backed disk with lazily-touched chunked storage: a fresh 64 MiB disk
// commits nothing until blocks are written (an idle WFD's resident bytes
// track touched blocks, not configured disk size), and a disk cloned from a
// MemDiskImage shares the template's chunks copy-on-write — the first write
// to a shared chunk copies that chunk privately.
class MemDisk : public BlockDevice {
 public:
  static constexpr size_t kChunkBytes = 64u << 10;  // 128 blocks

  explicit MemDisk(uint64_t block_count);
  // CoW clone: reads come from the image until this disk writes.
  explicit MemDisk(std::shared_ptr<const MemDiskImage> base);

  asbase::Status Read(uint64_t lba, std::span<uint8_t> out) override;
  asbase::Status Write(uint64_t lba, std::span<const uint8_t> data) override;
  uint64_t block_count() const override { return blocks_; }

  // Freezes the current contents into an immutable image (cheap: shares
  // chunk vectors, copies no data). This disk keeps serving reads/writes;
  // its own next write to any frozen chunk copies privately first.
  std::shared_ptr<const MemDiskImage> SnapshotImage();

  // Bytes privately materialized by this disk: touched chunks minus those
  // still shared with the base image. The CoW-aware half of
  // alloy_visor_pool_resident_bytes.
  size_t ResidentBytes() const;

 private:
  // Returns a privately-owned, mutable chunk for `chunk_index`, copying
  // from the base image (or zero-filling) on first write. mutex_ held.
  std::vector<uint8_t>* ChunkForWrite(uint64_t chunk_index);
  // Read view of a chunk; nullptr = hole (zeros). mutex_ held.
  const std::vector<uint8_t>* ChunkForRead(uint64_t chunk_index) const;

  mutable std::mutex mutex_;
  uint64_t blocks_;
  // Touched chunks owned by this disk. An entry shadows the base image.
  std::unordered_map<uint64_t, std::shared_ptr<std::vector<uint8_t>>> chunks_;
  // Template this disk was cloned from (or froze itself into); may be null.
  std::shared_ptr<const MemDiskImage> base_;
};

class FileDisk : public BlockDevice {
 public:
  // Creates/opens `path` and sizes it to block_count blocks.
  static asbase::Result<std::unique_ptr<FileDisk>> Create(
      const std::string& path, uint64_t block_count);
  ~FileDisk() override;

  asbase::Status Read(uint64_t lba, std::span<uint8_t> out) override;
  asbase::Status Write(uint64_t lba, std::span<const uint8_t> data) override;
  uint64_t block_count() const override { return blocks_; }

 private:
  FileDisk(int fd, uint64_t blocks) : fd_(fd), blocks_(blocks) {}
  int fd_;
  uint64_t blocks_;
};

// Decorator adding a seek latency per operation and a transfer cost per byte
// (defaults model a SATA SSD: ~60us access, ~500MB/s throughput).
class LatencyDisk : public BlockDevice {
 public:
  LatencyDisk(std::unique_ptr<BlockDevice> inner, int64_t per_op_nanos = 60'000,
              int64_t nanos_per_kib = 2'000);

  asbase::Status Read(uint64_t lba, std::span<uint8_t> out) override;
  asbase::Status Write(uint64_t lba, std::span<const uint8_t> data) override;
  uint64_t block_count() const override { return inner_->block_count(); }

 private:
  void Charge(size_t bytes);

  std::unique_ptr<BlockDevice> inner_;
  int64_t per_op_nanos_;
  int64_t nanos_per_kib_;
};

}  // namespace asblk

#endif  // SRC_BLOCKDEV_BLOCK_DEVICE_H_
