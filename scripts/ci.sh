#!/usr/bin/env bash
# CI entry point: the full tier-1 suite, then the serving layer, the obs
# layer, and the netstack again under TSan — the admission queue, the pool
# warmer, the watchdog pipeline, the flight-ring seqlock, and the
# poller/timer/backpressure paths are the most thread-heavy code in the
# tree, so they get the race detector even when the full TSan suite would
# be too slow.
#
# Usage: scripts/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build-ci}"

echo "==> docs link/anchor + metrics drift check"
python3 scripts/check_docs.py

echo "==> full suite (${BUILD})"
cmake -S . -B "${BUILD}" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "${BUILD}" -j "$(nproc)"
ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"

echo "==> serving + obs + netstack tests under ThreadSanitizer (${BUILD}-tsan)"
cmake -S . -B "${BUILD}-tsan" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DALLOY_SANITIZE=thread >/dev/null
cmake --build "${BUILD}-tsan" -j "$(nproc)"
# ALLOY_VISOR_SHARDS=4 makes every default-constructed router in the
# serving tests (and the bench smoke) run 4 shards, so the TSan pass
# covers cross-shard drain, the shared /metrics scrape, and the
# per-shard admission queues. The serving label includes
# visor_rebalance_test, so live migration, queue handoff, and
# ScaleTo-vs-inflight races run under the race detector too.
ALLOY_VISOR_SHARDS=4 ctest --test-dir "${BUILD}-tsan" -L serving --output-on-failure
# The obs label covers the flight-ring concurrent-writers/scraping-reader
# seqlock test — the torn-read protocol is only proven if TSan sees it.
ctest --test-dir "${BUILD}-tsan" -L obs --output-on-failure
ctest --test-dir "${BUILD}-tsan" -L netstack --output-on-failure
# The http label is the epoll edge reactor: reactor threads vs the handler
# worker pool vs Stop()'s settle protocol — keep-alive, pipelining, the
# connection cap, and idle reaping all run under the race detector.
ctest --test-dir "${BUILD}-tsan" -L http --output-on-failure

echo "==> serving + dataplane + sharding + obs-overhead bench smoke (--quick)"
(cd "${BUILD}" && ./bench/bench_serving --quick >/dev/null)
(cd "${BUILD}" && ./bench/bench_fig10_coldstart --quick >/dev/null)
(cd "${BUILD}" && ./bench/bench_dataplane --quick >/dev/null)
(cd "${BUILD}" && ./bench/bench_sharding --quick --zipf >/dev/null)
(cd "${BUILD}" && ./bench/bench_serving --obs-overhead --quick >/dev/null)

echo "CI OK"
