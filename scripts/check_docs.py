#!/usr/bin/env python3
"""Docs hygiene check, run by scripts/ci.sh.

1. Link check: every relative markdown link in README.md, DESIGN.md, and
   docs/*.md must point at a file that exists; a `#fragment` on a markdown
   target must match a heading anchor in that file (GitHub slug rules,
   approximated).
2. Metrics drift: every `alloy_*` family declared in src/obs/metrics.cc
   must be documented in docs/metrics.md, and vice versa (label names the
   doc mentions are exempt).

Exits non-zero with one line per problem.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "DESIGN.md"] + sorted(
    (ROOT / "docs").glob("*.md")
)

LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set:
    return {slugify(h) for h in HEADING_RE.findall(path.read_text())}


def check_links() -> list:
    problems = []
    for doc in DOC_FILES:
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = (
                doc if not path_part else (doc.parent / path_part).resolve()
            )
            rel = doc.relative_to(ROOT)
            if not dest.exists():
                problems.append(f"{rel}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in anchors_of(dest):
                    problems.append(
                        f"{rel}: missing anchor -> {target}"
                    )
    return problems


def check_metrics_drift() -> list:
    code = (ROOT / "src/obs/metrics.cc").read_text()
    doc = (ROOT / "docs/metrics.md").read_text()
    declared = set(re.findall(r'"(alloy_[a-z_]+)"', code))
    documented = set(re.findall(r"`(alloy_[a-z_]+)`", doc))
    # Label names and derived series the doc legitimately mentions.
    exempt = {"alloy_visor_shard"}
    problems = []
    for family in sorted(declared - documented):
        problems.append(
            f"docs/metrics.md: {family} declared in src/obs/metrics.cc "
            "but not documented"
        )
    for family in sorted(documented - declared - exempt):
        problems.append(
            f"docs/metrics.md: {family} documented but not declared in "
            "src/obs/metrics.cc"
        )
    return problems


def main() -> int:
    problems = check_links() + check_metrics_drift()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {len(DOC_FILES)} files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
