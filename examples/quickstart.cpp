// Quickstart: the paper's Figure 8 demo, end to end.
//
// Two functions inside one WorkFlow Domain pass a typed struct by reference
// through the slot "Conference": func_a creates the AsBuffer and writes into
// it; func_b references the same memory through the same slot and reads
// "EuroSys, 2025". No copies, no sockets, no external storage.
//
//   $ ./examples/quickstart

#include <cstdio>
#include <cstring>

#include "src/common/histogram.h"
#include "src/core/asstd/asstd.h"
#include "src/core/visor/orchestrator.h"

namespace {

// The Figure 8 payload. AsBuffer payloads live on the shared WFD heap, so
// they must be trivially copyable (fixed-size storage instead of String).
struct MyFuncData {
  char name[16];
  uint64_t year;
};

asbase::Status FuncA(alloy::FunctionContext& ctx) {  // data sender
  AS_ASSIGN_OR_RETURN(auto data, alloy::AsBuffer<MyFuncData>::WithSlot(
                                     ctx.as(), "Conference"));
  std::strcpy(data->name, "Euro");
  data->year = 2025;
  return asbase::OkStatus();
}

asbase::Status FuncB(alloy::FunctionContext& ctx) {  // data receiver
  AS_ASSIGN_OR_RETURN(auto data, alloy::AsBuffer<MyFuncData>::FromSlot(
                                     ctx.as(), "Conference"));
  char line[64];
  std::snprintf(line, sizeof(line), "%sSys, %llu\n", data->name,
                static_cast<unsigned long long>(data->year));
  AS_RETURN_IF_ERROR(ctx.as().Print(line));  // "EuroSys, 2025"
  ctx.SetResult(line);
  return data.Release();
}

}  // namespace

int main() {
  // 1. Register the two functions.
  alloy::FunctionRegistry::Global().Register("demo.func_a", FuncA);
  alloy::FunctionRegistry::Global().Register("demo.func_b", FuncB);

  // 2. Instantiate a WFD — the workflow's isolated execution environment.
  alloy::WfdOptions options;
  options.name = "quickstart";
  options.heap_bytes = 8u << 20;
  auto wfd = alloy::Wfd::Create(options);
  if (!wfd.ok()) {
    std::fprintf(stderr, "WFD creation failed: %s\n",
                 wfd.status().ToString().c_str());
    return 1;
  }
  std::printf("WFD up in %s; no as-libos module loaded yet: %s\n",
              asbase::FormatNanos((*wfd)->creation_nanos()).c_str(),
              (*wfd)->libos().LoadedModules().empty() ? "true" : "false");

  // 3. Run the two functions as a two-stage workflow.
  alloy::WorkflowSpec spec;
  spec.name = "figure8";
  spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{"demo.func_a"}}});
  spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{"demo.func_b"}}});

  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  if (!stats.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect what on-demand loading actually pulled in.
  std::printf("modules loaded on demand:");
  for (auto kind : (*wfd)->libos().LoadedModules()) {
    std::printf(" %s", alloy::ModuleKindName(kind));
  }
  std::printf("\nend-to-end: %s, trampoline crossings: %llu\n",
              asbase::FormatNanos(stats->total_nanos).c_str(),
              static_cast<unsigned long long>(stats->trampoline_enters));
  return 0;
}
