// WordCount through the full AlloyStack control plane (§3.2):
//
// A JSON workflow configuration is registered with as-visor, the watchdog
// exposes it on an HTTP endpoint, and this program triggers it the way a
// gateway would — POST /invoke/wordcount. Each invocation instantiates a
// fresh WFD, runs map/reduce/collect stages with reference-passed
// intermediate data, and reclaims everything.
//
//   $ ./examples/wordcount_app

#include <cstdio>

#include "src/common/histogram.h"
#include "src/core/visor/visor.h"
#include "src/workloads/alloystack_env.h"
#include "src/workloads/generic_apps.h"
#include "src/workloads/inputs.h"

namespace {

// Invoke() creates the WFD itself, so the input has to come from somewhere
// inside the workflow: stage 0 generates the corpus onto the WFD disk.
asbase::Status GenerateCorpus(alloy::FunctionContext& ctx) {
  const size_t bytes =
      static_cast<size_t>(ctx.params()["corpus_bytes"].as_int(1 << 20));
  auto corpus = aswl::MakeTextCorpus(bytes, 2025);
  return ctx.as().WriteWholeFile("/input.bin", corpus);
}

}  // namespace

int main() {
  // Register the application functions (map/reduce/collect ×3 instances).
  alloy::WorkflowSpec wc_spec =
      aswl::RegisterAlloyStackWorkflow(aswl::WordCountWorkflow(3));
  alloy::FunctionRegistry::Global().Register("wc.generate", GenerateCorpus);

  // Build the full workflow: generate -> map x3 -> reduce x3 -> collect.
  asbase::Json config;
  config.Set("name", "wordcount");
  asbase::Json stages;
  {
    asbase::Json stage0;
    asbase::Json fn;
    fn.Set("name", "wc.generate");
    stage0.Set("functions", asbase::Json(asbase::JsonArray{fn}));
    stages.Append(stage0);
    for (const auto& stage : wc_spec.stages) {
      asbase::Json stage_json;
      asbase::JsonArray functions;
      for (const auto& function : stage.functions) {
        asbase::Json fn_json;
        fn_json.Set("name", function.name);
        fn_json.Set("instances", function.instances);
        functions.push_back(fn_json);
      }
      stage_json.Set("functions", asbase::Json(std::move(functions)));
      stages.Append(stage_json);
    }
  }
  config.Set("stages", stages);
  asbase::Json options;
  options.Set("heap_mb", 64);
  config.Set("options", options);

  alloy::AsVisor visor;
  auto registered = visor.RegisterWorkflowFromJson(config);
  if (!registered.ok()) {
    std::fprintf(stderr, "register failed: %s\n",
                 registered.ToString().c_str());
    return 1;
  }

  // Start the watchdog and invoke over HTTP, gateway-style.
  if (!visor.StartWatchdog(0).ok()) {
    std::fprintf(stderr, "watchdog failed to start\n");
    return 1;
  }
  std::printf("watchdog listening on 127.0.0.1:%u\n", visor.watchdog_port());

  for (size_t corpus_bytes : {256u << 10, 1u << 20}) {
    ashttp::HttpRequest request;
    request.method = "POST";
    request.target = "/invoke/wordcount";
    asbase::Json params;
    params.Set("corpus_bytes", static_cast<int64_t>(corpus_bytes));
    params.Set("input", "/input.bin");
    request.body = params.Dump();

    auto response =
        ashttp::HttpCall("127.0.0.1", visor.watchdog_port(), request);
    if (!response.ok() || response->status != 200) {
      std::fprintf(stderr, "invoke failed\n");
      return 1;
    }
    std::printf("POST /invoke/wordcount (%s corpus)\n  -> %s\n",
                asbase::FormatBytes(corpus_bytes).c_str(),
                response->body.c_str());

    // Verify the answer independently.
    auto expected = aswl::ExpectedWordCountResult(
        aswl::MakeTextCorpus(corpus_bytes, 2025));
    const bool correct =
        response->body.find(expected) != std::string::npos;
    std::printf("  verified against native recount: %s\n",
                correct ? "MATCH" : "MISMATCH");
    if (!correct) {
      return 1;
    }
  }

  auto histogram = visor.LatencyHistogram("wordcount");
  if (histogram.ok()) {
    std::printf("latency over %zu invocations: %s\n", histogram->count(),
                histogram->Summary().c_str());
  }
  visor.StopWatchdog();
  return 0;
}
