// Image-processing workflow (the §2.2 motivating example):
//
//   extract-image-metadata -> thumbnail -> store-image-metadata
//
// extract reads the "image" from the WFD's FAT disk image and passes its
// metadata downstream by reference; thumbnail downsamples the pixels and
// writes the result back to the virtual disk; store timestamps a record and
// sends it to a "database" server over the LibOS TCP stack (smoltcp
// equivalent on the virtual switch). Exactly the module set of Table 1 gets
// loaded on demand: time, mm, block/fs (fatfs+fdtab), net (socket).
//
//   $ ./examples/image_pipeline

#include <cstdio>
#include <cstring>
#include <thread>

#include "src/common/histogram.h"
#include "src/core/asstd/asstd.h"
#include "src/core/visor/visor.h"
#include "src/workloads/inputs.h"

namespace {

struct ImageMetadata {
  uint32_t width;
  uint32_t height;
  uint64_t bytes;
  uint64_t checksum;
};

asbase::Status ExtractMetadata(alloy::FunctionContext& ctx) {
  AS_ASSIGN_OR_RETURN(auto image, ctx.as().ReadWholeFile("/photos/cat.raw"));
  AS_ASSIGN_OR_RETURN(auto meta, alloy::AsBuffer<ImageMetadata>::WithSlot(
                                     ctx.as(), "metadata"));
  meta->width = 512;
  meta->height = static_cast<uint32_t>(image.size() / 512);
  meta->bytes = image.size();
  meta->checksum = aswl::Checksum(image);
  return asbase::OkStatus();
}

asbase::Status Thumbnail(alloy::FunctionContext& ctx) {
  AS_ASSIGN_OR_RETURN(auto image, ctx.as().ReadWholeFile("/photos/cat.raw"));
  std::vector<uint8_t> thumb(image.size() / 16);
  for (size_t i = 0; i < thumb.size(); ++i) {
    thumb[i] = image[i * 16];  // 4x4 decimation
  }
  AS_RETURN_IF_ERROR(ctx.as().Mkdir("/thumbs"));
  return ctx.as().WriteWholeFile("/thumbs/cat.raw", thumb);
}

asbase::Status StoreMetadata(alloy::FunctionContext& ctx) {
  AS_ASSIGN_OR_RETURN(auto meta, alloy::AsBuffer<ImageMetadata>::FromSlot(
                                     ctx.as(), "metadata"));
  AS_ASSIGN_OR_RETURN(int64_t now, ctx.as().NowMicros());
  char record[160];
  std::snprintf(record, sizeof(record),
                "INSERT image(width=%u,height=%u,bytes=%llu,crc=%llx,ts=%lld)",
                meta->width, meta->height,
                static_cast<unsigned long long>(meta->bytes),
                static_cast<unsigned long long>(meta->checksum),
                static_cast<long long>(now));
  AS_RETURN_IF_ERROR(meta.Release());

  AS_ASSIGN_OR_RETURN(auto connection,
                      ctx.as().Connect(asnet::MakeAddr(10, 0, 9, 1), 5432));
  AS_RETURN_IF_ERROR(asnet::SendAll(
      *connection, std::span<const uint8_t>(
                       reinterpret_cast<const uint8_t*>(record),
                       std::strlen(record))));
  uint8_t ack[8];
  AS_ASSIGN_OR_RETURN(size_t n, connection->Recv(ack));
  connection->Close();
  ctx.SetResult(std::string(record) + " -> " +
                std::string(ack, ack + n));
  return asbase::OkStatus();
}

}  // namespace

int main() {
  // The "database": a TCP server on the virtual network fabric.
  asnet::VirtualSwitch fabric;
  auto db_port = fabric.Attach(asnet::MakeAddr(10, 0, 9, 1));
  asnet::NetStack db_stack(db_port);
  auto listener = db_stack.Listen(5432);
  if (!listener.ok()) {
    std::fprintf(stderr, "db listen failed\n");
    return 1;
  }
  std::thread db_thread([&] {
    auto connection = (*listener)->Accept(std::chrono::seconds(30));
    if (!connection.ok()) {
      return;
    }
    uint8_t query[256];
    auto n = (*connection)->Recv(query);
    if (n.ok()) {
      std::printf("[db] received: %.*s\n", static_cast<int>(*n), query);
      (*connection)->Send(std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>("ACK"), 3));
    }
    (*connection)->Close();
  });

  alloy::FunctionRegistry::Global().Register("img.extract", ExtractMetadata);
  alloy::FunctionRegistry::Global().Register("img.thumbnail", Thumbnail);
  alloy::FunctionRegistry::Global().Register("img.store", StoreMetadata);

  alloy::AsVisor visor;
  alloy::WorkflowSpec spec;
  spec.name = "image-pipeline";
  spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{"img.extract"}}});
  spec.stages.push_back(
      alloy::StageSpec{{alloy::FunctionSpec{"img.thumbnail"}}});
  spec.stages.push_back(alloy::StageSpec{{alloy::FunctionSpec{"img.store"}}});

  alloy::AsVisor::WorkflowOptions options;
  options.wfd.name = "image-pipeline";
  options.wfd.heap_bytes = 16u << 20;
  options.wfd.fabric = &fabric;
  options.wfd.addr = asnet::MakeAddr(10, 0, 9, 50);
  visor.RegisterWorkflow(spec, options);

  // The image has to exist on the workflow's disk image before invocation;
  // production deployments bake inputs into the image. Here a pre-staged
  // WFD isn't exposed by Invoke(), so run via the orchestrator directly.
  auto wfd = alloy::Wfd::Create(options.wfd);
  if (!wfd.ok()) {
    std::fprintf(stderr, "wfd failed: %s\n", wfd.status().ToString().c_str());
    return 1;
  }
  {
    alloy::AsStd as(wfd->get());
    as.Mkdir("/photos");
    auto pixels = aswl::MakePayload(512 * 512, 2025);
    if (!as.WriteWholeFile("/photos/cat.raw", pixels).ok()) {
      std::fprintf(stderr, "failed to stage the image\n");
      return 1;
    }
  }
  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  db_thread.join();
  if (!stats.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("result: %s\n", stats->result.c_str());
  std::printf("modules loaded:");
  for (auto kind : (*wfd)->libos().LoadedModules()) {
    std::printf(" %s", alloy::ModuleKindName(kind));
  }
  std::printf("\nend-to-end: %s\n",
              asbase::FormatNanos(stats->total_nanos).c_str());
  return 0;
}
