// FINRA-style inter-function isolation (§3.3).
//
// The paper's example: a trade-validation workflow handles sensitive data,
// so the tenant enables isolation *between functions of the same WFD* —
// every function instance gets its own protection key, and buffer accesses
// pay PKRU switches. This example runs the same two-function workflow with
// IFI off and on, shows the PKRU switch counts, and demonstrates that with
// the emulated MPK backend a function context whose PKRU lacks the user key
// is denied access to the shared heap.
//
//   $ ./examples/finra_ifi

#include <cstdio>
#include <cstring>

#include "src/common/histogram.h"
#include "src/core/asstd/asstd.h"
#include "src/core/visor/orchestrator.h"

namespace {

struct TradeBatch {
  uint32_t count;
  double notional[64];
};

asbase::Status FetchTrades(alloy::FunctionContext& ctx) {
  AS_ASSIGN_OR_RETURN(auto batch, alloy::AsBuffer<TradeBatch>::WithSlot(
                                      ctx.as(), "trades"));
  auto guard = ctx.as().BufferAccess();  // PKRU switch under IFI
  batch->count = 64;
  for (uint32_t i = 0; i < batch->count; ++i) {
    batch->notional[i] = 1000.0 + i * 17.25;
  }
  return asbase::OkStatus();
}

asbase::Status ValidateTrades(alloy::FunctionContext& ctx) {
  AS_ASSIGN_OR_RETURN(auto batch, alloy::AsBuffer<TradeBatch>::FromSlot(
                                      ctx.as(), "trades"));
  double total = 0;
  {
    auto guard = ctx.as().BufferAccess();
    for (uint32_t i = 0; i < batch->count; ++i) {
      total += batch->notional[i];
    }
  }
  char line[64];
  std::snprintf(line, sizeof(line), "validated notional: %.2f", total);
  ctx.SetResult(line);
  return batch.Release();
}

int64_t RunOnce(bool ifi, uint64_t* pkru_switches) {
  alloy::WfdOptions options;
  options.name = ifi ? "finra-ifi" : "finra";
  options.heap_bytes = 8u << 20;
  options.inter_function_isolation = ifi;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  auto wfd = alloy::Wfd::Create(options);
  if (!wfd.ok()) {
    return -1;
  }
  alloy::WorkflowSpec spec;
  spec.name = options.name;
  spec.stages.push_back(
      alloy::StageSpec{{alloy::FunctionSpec{"finra.fetch"}}});
  spec.stages.push_back(
      alloy::StageSpec{{alloy::FunctionSpec{"finra.validate"}}});
  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, asbase::Json());
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats.status().ToString().c_str());
    return -1;
  }
  *pkru_switches = stats->pkru_switches;
  std::printf("  result: %s\n", stats->result.c_str());
  return stats->total_nanos;
}

}  // namespace

int main() {
  alloy::FunctionRegistry::Global().Register("finra.fetch", FetchTrades);
  alloy::FunctionRegistry::Global().Register("finra.validate", ValidateTrades);

  std::printf("== default (functions of one tenant share MPK permissions)\n");
  uint64_t base_switches = 0;
  const int64_t base = RunOnce(false, &base_switches);
  std::printf("  latency %s, PKRU switches %llu\n",
              asbase::FormatNanos(base).c_str(),
              static_cast<unsigned long long>(base_switches));

  std::printf("== AS-IFI (per-function keys, FINRA configuration)\n");
  uint64_t ifi_switches = 0;
  const int64_t ifi = RunOnce(true, &ifi_switches);
  std::printf("  latency %s, PKRU switches %llu (+%llu from buffer guards)\n",
              asbase::FormatNanos(ifi).c_str(),
              static_cast<unsigned long long>(ifi_switches),
              static_cast<unsigned long long>(ifi_switches - base_switches));

  // Enforcement demonstration: a context that dropped the user key cannot
  // touch heap buffers.
  std::printf("== enforcement check (emulated backend)\n");
  alloy::WfdOptions options;
  options.heap_bytes = 4u << 20;
  options.mpk_backend = asmpk::MpkBackend::kEmulated;
  auto wfd = alloy::Wfd::Create(options);
  if (!wfd.ok()) {
    return 1;
  }
  alloy::AsStd as(wfd->get());
  auto secret = as.AllocBuffer("secret", 4096, 99);
  if (!secret.ok()) {
    return 1;
  }
  auto& mpk = (*wfd)->mpk();
  mpk.WritePkru(asmpk::PkeyRuntime::kDenyAll);
  auto denied = mpk.CheckAccess(secret->bytes.data(), 16, /*write=*/false);
  std::printf("  access with all keys denied -> %s\n",
              denied.ToString().c_str());
  mpk.WritePkru((*wfd)->UserPkru((*wfd)->user_key()));
  auto allowed = mpk.CheckAccess(secret->bytes.data(), 16, /*write=*/false);
  std::printf("  access with the function's key -> %s\n",
              allowed.ToString().c_str());
  mpk.WritePkru(0);
  return denied.ok() || !allowed.ok() ? 1 : 0;
}
