// Multi-language support (§7.2): a FunctionChain whose stages are AsVM
// ("WASM") guests, executed through the WASI adaptation layer — the
// AlloyStack-C deployment path. The same assembled module also runs in
// boxed (CPython-model) mode, the AlloyStack-Py path, after provisioning the
// synthetic stdlib image on the WFD's filesystem.
//
//   $ ./examples/wasm_chain

#include <cstdio>

#include "src/common/histogram.h"
#include "src/core/asstd/wasi.h"
#include "src/core/visor/orchestrator.h"
#include "src/workloads/alloystack_env.h"
#include "src/workloads/vm_apps.h"

namespace {

int Run(bool python) {
  constexpr int kLength = 5;
  constexpr size_t kBytes = 64 * 1024;
  constexpr uint64_t kSeed = 7;

  auto workflow = aswl::BuildVmWorkflow(aswl::VmApp::kChain, kLength);
  if (!workflow.ok()) {
    std::fprintf(stderr, "assembling guests failed: %s\n",
                 workflow.status().ToString().c_str());
    return 1;
  }
  alloy::WorkflowSpec spec = aswl::RegisterAlloyVmWorkflow(*workflow, python);

  alloy::WfdOptions options;
  options.name = python ? "wasm-chain-py" : "wasm-chain-c";
  options.heap_bytes = 32u << 20;
  auto wfd = alloy::Wfd::Create(options);
  if (!wfd.ok()) {
    return 1;
  }
  if (python) {
    alloy::AsStd as(wfd->get());
    if (!alloy::EnsurePythonStdlib(as).ok()) {
      return 1;
    }
  }

  asbase::Json params;
  params.Set("bytes", static_cast<int64_t>(kBytes));
  params.Set("seed", static_cast<int64_t>(kSeed));
  params.Set("chain_length", kLength);

  alloy::Orchestrator orchestrator(wfd->get());
  auto stats = orchestrator.Run(spec, params);
  if (!stats.ok()) {
    std::fprintf(stderr, "chain failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  const std::string expected =
      aswl::ExpectedVmChainResult(kBytes, kSeed, kLength);
  std::printf("%-14s %d guests x %s payload: %s in %s (%s)\n",
              python ? "AlloyStack-Py" : "AlloyStack-C", kLength,
              asbase::FormatBytes(kBytes).c_str(), stats->result.c_str(),
              asbase::FormatNanos(stats->total_nanos).c_str(),
              stats->result == expected ? "verified" : "MISMATCH");
  return stats->result == expected ? 0 : 1;
}

}  // namespace

int main() {
  std::printf(
      "FunctionChain in AsVM bytecode through the WASI layer (guests only\n"
      "touch the world via hostcalls; every hostcall crosses the MPK\n"
      "trampoline into as-libos).\n\n");
  const int c_status = Run(/*python=*/false);
  const int py_status = Run(/*python=*/true);
  return c_status != 0 || py_status != 0 ? 1 : 0;
}
